//! Implementations of the built-in relations declared in
//! [`rel_sema::builtins`]. Each builtin is *solved* under a binding
//! pattern: given some argument positions bound, produce the complete
//! argument tuples consistent with them (0, 1, or finitely many).
//!
//! `add(x, y, z)` with `x, z` bound solves `y = z − x` (§3.2's
//! `DiscountedproductPrice` relies on exactly this inversion).

use rel_core::{RelError, RelResult, Value};

/// Solve a builtin like [`solve_raw`], but with *relational* typing:
/// a type mismatch means the arguments are simply not in the (infinite,
/// typed) relation — no tuples, no error. `modulo("O1", 100)` is empty,
/// exactly as `⟨"O1", 100, v⟩ ∉ modulo` for every `v`. Arithmetic faults
/// (overflow, division issues) still surface as errors.
pub fn solve(name: &str, inputs: &[Option<Value>]) -> RelResult<Vec<Vec<Value>>> {
    match solve_raw(name, inputs) {
        Err(RelError::Type(_)) => Ok(vec![]),
        other => other,
    }
}

/// Solve a builtin: `inputs[i] = Some(v)` means position `i` is bound to
/// `v`. Returns complete argument tuples. The caller guarantees (via the
/// safety analysis / planner) that a supported mode is matched; a binding
/// pattern no mode supports yields a runtime safety error.
pub fn solve_raw(name: &str, inputs: &[Option<Value>]) -> RelResult<Vec<Vec<Value>>> {
    match name {
        "rel_primitive_add" => arith3(name, inputs, f_add, i_add, i_sub_checked),
        "rel_primitive_subtract" => arith3(name, inputs, f_sub, i_sub, i_sub_inverse),
        "rel_primitive_multiply" => arith3(name, inputs, f_mul, i_mul, i_div_exact),
        "rel_primitive_divide" => divide(inputs),
        "rel_primitive_modulo" => last_free2(name, inputs, modulo),
        "rel_primitive_power" => last_free2(name, inputs, power),
        "rel_primitive_minimum" => last_free2(name, inputs, |a, b| {
            Ok(if cmp_le(a, b)? { a.clone() } else { b.clone() })
        }),
        "rel_primitive_maximum" => last_free2(name, inputs, |a, b| {
            Ok(if cmp_le(a, b)? { b.clone() } else { a.clone() })
        }),
        "rel_primitive_abs" => unary(name, inputs, |v| match v {
            Value::Int(i) => Ok(Value::Int(i.checked_abs().ok_or_else(overflow)?)),
            _ => float1(v, f64::abs),
        }),
        "rel_primitive_natural_log" => unary(name, inputs, |v| float1(v, f64::ln)),
        "rel_primitive_exp" => unary(name, inputs, |v| float1(v, f64::exp)),
        "rel_primitive_sqrt" => unary(name, inputs, |v| float1(v, f64::sqrt)),
        "rel_primitive_sin" => unary(name, inputs, |v| float1(v, f64::sin)),
        "rel_primitive_cos" => unary(name, inputs, |v| float1(v, f64::cos)),
        "rel_primitive_tan" => unary(name, inputs, |v| float1(v, f64::tan)),
        "rel_primitive_floor" => unary(name, inputs, |v| match v {
            Value::Int(i) => Ok(Value::Int(*i)),
            _ => Ok(Value::Int(as_f64(v)?.floor() as i64)),
        }),
        "rel_primitive_ceil" => unary(name, inputs, |v| match v {
            Value::Int(i) => Ok(Value::Int(*i)),
            _ => Ok(Value::Int(as_f64(v)?.ceil() as i64)),
        }),
        "rel_primitive_log" => last_free2(name, inputs, |base, x| {
            Ok(Value::float(as_f64(x)?.log(as_f64(base)?)))
        }),
        "rel_primitive_int_to_float" => unary(name, inputs, |v| match v {
            Value::Int(i) => Ok(Value::float(*i as f64)),
            other => Err(RelError::type_err(format!("int_to_float on {other}"))),
        }),
        "rel_primitive_float_to_int" => unary(name, inputs, |v| match v {
            Value::Float(f) => Ok(Value::Int(f.0 as i64)),
            Value::Int(i) => Ok(Value::Int(*i)),
            other => Err(RelError::type_err(format!("float_to_int on {other}"))),
        }),
        "rel_primitive_parse_int" => unary(name, inputs, |v| match v.as_str() {
            Some(s) => s
                .trim()
                .parse::<i64>()
                .map(Value::Int)
                .map_err(|e| RelError::type_err(format!("parse_int({s:?}): {e}"))),
            None => Err(RelError::type_err("parse_int expects a string")),
        }),
        "rel_primitive_parse_float" => unary(name, inputs, |v| match v.as_str() {
            Some(s) => s
                .trim()
                .parse::<f64>()
                .map(Value::float)
                .map_err(|e| RelError::type_err(format!("parse_float({s:?}): {e}"))),
            None => Err(RelError::type_err("parse_float expects a string")),
        }),
        "rel_primitive_to_string" => unary(name, inputs, |v| {
            Ok(Value::str(match v {
                Value::String(s) => s.to_string(),
                other => other.to_string(),
            }))
        }),
        "rel_primitive_concat" => last_free2(name, inputs, |a, b| {
            match (a.as_str(), b.as_str()) {
                (Some(x), Some(y)) => Ok(Value::str(format!("{x}{y}"))),
                _ => Err(RelError::type_err("concat expects strings")),
            }
        }),
        "rel_primitive_string_length" => unary(name, inputs, |v| match v.as_str() {
            Some(s) => Ok(Value::Int(s.chars().count() as i64)),
            None => Err(RelError::type_err("string_length expects a string")),
        }),
        "rel_primitive_uppercase" => unary(name, inputs, |v| match v.as_str() {
            Some(s) => Ok(Value::str(s.to_uppercase())),
            None => Err(RelError::type_err("uppercase expects a string")),
        }),
        "rel_primitive_lowercase" => unary(name, inputs, |v| match v.as_str() {
            Some(s) => Ok(Value::str(s.to_lowercase())),
            None => Err(RelError::type_err("lowercase expects a string")),
        }),
        "rel_primitive_starts_with" => check2(name, inputs, |a, b| {
            Ok(match (a.as_str(), b.as_str()) {
                (Some(x), Some(y)) => x.starts_with(y),
                _ => false,
            })
        }),
        "rel_primitive_contains" => check2(name, inputs, |a, b| {
            Ok(match (a.as_str(), b.as_str()) {
                (Some(x), Some(y)) => x.contains(y),
                _ => false,
            })
        }),
        "rel_primitive_like_match" => check2(name, inputs, |s, pat| {
            Ok(match (s.as_str(), pat.as_str()) {
                (Some(s), Some(p)) => glob_match(p, s),
                _ => false,
            })
        }),
        "rel_primitive_substring" => substring(inputs),
        "range" => range(inputs),
        // Type tests.
        "Int" => type_test(inputs, |v| matches!(v, Value::Int(_))),
        "Float" => type_test(inputs, |v| matches!(v, Value::Float(_))),
        "Number" => type_test(inputs, Value::is_number),
        "String" => type_test(inputs, |v| matches!(v, Value::String(_))),
        "Entity" => type_test(inputs, |v| matches!(v, Value::Entity(_))),
        other => Err(RelError::internal(format!("unknown builtin `{other}`"))),
    }
}

/// Fold step used by `reduce` fast paths: apply a named binary builtin.
pub fn fold_step(op: &str, acc: &Value, x: &Value) -> RelResult<Value> {
    let out = solve(op, &[Some(acc.clone()), Some(x.clone()), None])?;
    out.into_iter()
        .next()
        .map(|t| t[2].clone())
        .ok_or_else(|| RelError::Reduce(format!("`{op}` produced no result in reduce")))
}

fn overflow() -> RelError {
    RelError::Arithmetic("integer overflow".into())
}

fn as_f64(v: &Value) -> RelResult<f64> {
    v.as_f64()
        .ok_or_else(|| RelError::type_err(format!("expected a number, got {v}")))
}

fn float1(v: &Value, f: impl Fn(f64) -> f64) -> RelResult<Value> {
    Ok(Value::float(f(as_f64(v)?)))
}

fn cmp_le(a: &Value, b: &Value) -> RelResult<bool> {
    a.numeric_cmp(b)
        .map(|o| o != std::cmp::Ordering::Greater)
        .ok_or_else(|| RelError::type_err(format!("cannot compare {a} and {b}")))
}

// --- numeric kernels -----------------------------------------------------

fn f_add(a: f64, b: f64) -> f64 {
    a + b
}
fn f_sub(a: f64, b: f64) -> f64 {
    a - b
}
fn f_mul(a: f64, b: f64) -> f64 {
    a * b
}
fn i_add(a: i64, b: i64) -> RelResult<i64> {
    a.checked_add(b).ok_or_else(overflow)
}
fn i_sub(a: i64, b: i64) -> RelResult<i64> {
    a.checked_sub(b).ok_or_else(overflow)
}
/// Inverse solve for add: given result and one operand.
fn i_sub_checked(z: i64, a: i64) -> RelResult<Option<i64>> {
    Ok(Some(z.checked_sub(a).ok_or_else(overflow)?))
}
/// Inverse solve for subtract in position patterns.
fn i_sub_inverse(z: i64, a: i64) -> RelResult<Option<i64>> {
    // subtract(x, y, z): given z and x, y = x − z; given z and y, x = z + y.
    // The caller distinguishes which operand is known; see `arith3`.
    Ok(Some(z.checked_add(a).ok_or_else(overflow)?))
}
fn i_mul(a: i64, b: i64) -> RelResult<i64> {
    a.checked_mul(b).ok_or_else(overflow)
}
/// Inverse solve for multiply: exact division only (relation semantics:
/// `multiply(x, y, z)` holds for integers only when the product is exact).
fn i_div_exact(z: i64, a: i64) -> RelResult<Option<i64>> {
    if a == 0 {
        return Ok(None);
    }
    if z % a == 0 {
        Ok(Some(z / a))
    } else {
        Ok(None)
    }
}

/// Generic ternary arithmetic solver for `op(x, y, z)` with `z = x ⊕ y`.
///
/// Handles all two-of-three binding patterns. Integer inputs stay integers;
/// any float makes the result float.
fn arith3(
    name: &str,
    inputs: &[Option<Value>],
    ff: fn(f64, f64) -> f64,
    ii: fn(i64, i64) -> RelResult<i64>,
    inv: fn(i64, i64) -> RelResult<Option<i64>>,
) -> RelResult<Vec<Vec<Value>>> {
    let [x, y, z] = three(name, inputs)?;
    match (x, y, z) {
        (Some(x), Some(y), z_opt) => {
            let r = match (&x, &y) {
                (Value::Int(a), Value::Int(b)) => {
                    if name == "rel_primitive_subtract" {
                        Value::Int(a.checked_sub(*b).ok_or_else(overflow)?)
                    } else {
                        Value::Int(ii(*a, *b)?)
                    }
                }
                _ => Value::float(ff(as_f64(&x)?, as_f64(&y)?)),
            };
            Ok(match z_opt {
                Some(z) if !z.numeric_eq(&r) => vec![],
                _ => vec![vec![x, y, r]],
            })
        }
        (Some(x), None, Some(z)) => {
            // Solve for y.
            let y = solve_third(name, &z, &x, true, ff, inv)?;
            Ok(y.map(|y| vec![vec![x, y, z]]).unwrap_or_default())
        }
        (None, Some(y), Some(z)) => {
            let x = solve_third(name, &z, &y, false, ff, inv)?;
            Ok(x.map(|x| vec![vec![x, y, z]]).unwrap_or_default())
        }
        _ => Err(RelError::unsafe_expr(format!(
            "builtin `{name}` needs at least two bound arguments"
        ))),
    }
}

/// Solve the missing operand of a ternary arithmetic relation.
/// `known_is_first` says whether the known operand is `x` (solving `y`).
fn solve_third(
    name: &str,
    z: &Value,
    known: &Value,
    known_is_first: bool,
    ff: fn(f64, f64) -> f64,
    inv: fn(i64, i64) -> RelResult<Option<i64>>,
) -> RelResult<Option<Value>> {
    match (z, known) {
        (Value::Int(zi), Value::Int(ki)) => match name {
            "rel_primitive_add" | "rel_primitive_multiply" => {
                // Commutative: missing = inv(z, known).
                inv(*zi, *ki).map(|o| o.map(Value::Int))
            }
            "rel_primitive_subtract" => {
                // z = x − y. Known x ⇒ y = x − z; known y ⇒ x = z + y.
                if known_is_first {
                    Ok(Some(Value::Int(ki.checked_sub(*zi).ok_or_else(overflow)?)))
                } else {
                    Ok(Some(Value::Int(zi.checked_add(*ki).ok_or_else(overflow)?)))
                }
            }
            _ => Err(RelError::unsafe_expr(format!("`{name}` is not invertible"))),
        },
        _ => {
            // Float solving via the inverse float op.
            let zf = as_f64(z)?;
            let kf = as_f64(known)?;
            let missing = match name {
                "rel_primitive_add" => zf - kf,
                "rel_primitive_multiply" => {
                    if kf == 0.0 {
                        return Ok(None);
                    }
                    zf / kf
                }
                "rel_primitive_subtract" => {
                    if known_is_first {
                        kf - zf
                    } else {
                        zf + kf
                    }
                }
                _ => return Err(RelError::unsafe_expr(format!("`{name}` is not invertible"))),
            };
            // Verify (guards against float edge cases).
            let (x, y) = if known_is_first { (kf, missing) } else { (missing, kf) };
            if ff(x, y) == zf {
                Ok(Some(Value::float(missing)))
            } else {
                Ok(None)
            }
        }
    }
}

/// Division: `divide(x, y, z)`, `z = x / y`. Exact integer division stays
/// integral (the paper's `(x-x%10)/10`); inexact integer division promotes
/// to float (so `avg` is exact); division by zero yields no tuple.
fn divide(inputs: &[Option<Value>]) -> RelResult<Vec<Vec<Value>>> {
    let [x, y, z] = three("rel_primitive_divide", inputs)?;
    match (x, y, z) {
        (Some(x), Some(y), z_opt) => {
            let r = match (&x, &y) {
                (Value::Int(a), Value::Int(b)) => {
                    if *b == 0 {
                        return Ok(vec![]);
                    }
                    if a % b == 0 {
                        Value::Int(a / b)
                    } else {
                        Value::float(*a as f64 / *b as f64)
                    }
                }
                _ => {
                    let d = as_f64(&y)?;
                    if d == 0.0 {
                        return Ok(vec![]);
                    }
                    Value::float(as_f64(&x)? / d)
                }
            };
            Ok(match z_opt {
                Some(z) if !z.numeric_eq(&r) => vec![],
                _ => vec![vec![x, y, r]],
            })
        }
        (Some(x), None, Some(z)) => {
            // y = x / z (float only; integer inverse is ambiguous).
            let zf = as_f64(&z)?;
            if zf == 0.0 {
                return Ok(vec![]);
            }
            let y = Value::float(as_f64(&x)? / zf);
            Ok(vec![vec![x, y, z]])
        }
        (None, Some(y), Some(z)) => {
            let x = Value::float(as_f64(&z)? * as_f64(&y)?);
            Ok(vec![vec![x, y, z]])
        }
        _ => Err(RelError::unsafe_expr(
            "`divide` needs at least two bound arguments",
        )),
    }
}

fn modulo(a: &Value, b: &Value) -> RelResult<Value> {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => {
            if *y == 0 {
                // modulo(x, 0, z) holds for no z.
                Err(RelError::Type("modulo by zero".into()))
            } else {
                Ok(Value::Int(x.rem_euclid(*y)))
            }
        }
        _ => {
            let d = as_f64(b)?;
            if d == 0.0 {
                Err(RelError::Type("modulo by zero".into()))
            } else {
                Ok(Value::float(as_f64(a)?.rem_euclid(d)))
            }
        }
    }
}

fn power(a: &Value, b: &Value) -> RelResult<Value> {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) if *y >= 0 && *y <= u32::MAX as i64 => Ok(Value::Int(
            x.checked_pow(*y as u32).ok_or_else(overflow)?,
        )),
        _ => Ok(Value::float(as_f64(a)?.powf(as_f64(b)?))),
    }
}

/// `substring(s, from, to, out)` — 1-based inclusive character range.
fn substring(inputs: &[Option<Value>]) -> RelResult<Vec<Vec<Value>>> {
    if inputs.len() != 4 {
        return Err(RelError::internal("substring expects 4 arguments"));
    }
    let (Some(s), Some(from), Some(to)) = (&inputs[0], &inputs[1], &inputs[2]) else {
        return Err(RelError::unsafe_expr("substring needs s, from, to bound"));
    };
    let (Some(s), Some(from), Some(to)) = (s.as_str(), from.as_int(), to.as_int()) else {
        return Err(RelError::type_err("substring expects (string, int, int)"));
    };
    if from < 1 || to < from {
        return Ok(vec![]);
    }
    let chars: Vec<char> = s.chars().collect();
    if to as usize > chars.len() {
        return Ok(vec![]);
    }
    let out: String = chars[(from - 1) as usize..to as usize].iter().collect();
    let result = Value::str(out);
    match &inputs[3] {
        Some(v) if *v != result => Ok(vec![]),
        _ => Ok(vec![vec![
            inputs[0].clone().expect("checked"),
            inputs[1].clone().expect("checked"),
            inputs[2].clone().expect("checked"),
            result,
        ]]),
    }
}

/// `range(lo, hi, step, out)`: `out ∈ {lo, lo+step, …} ∩ [lo, hi]`.
fn range(inputs: &[Option<Value>]) -> RelResult<Vec<Vec<Value>>> {
    if inputs.len() != 4 {
        return Err(RelError::internal("range expects 4 arguments"));
    }
    let (Some(lo), Some(hi), Some(step)) = (&inputs[0], &inputs[1], &inputs[2]) else {
        return Err(RelError::unsafe_expr("range needs lo, hi, step bound"));
    };
    let (Some(lo), Some(hi), Some(step)) = (lo.as_int(), hi.as_int(), step.as_int()) else {
        return Err(RelError::type_err("range expects integer bounds"));
    };
    if step <= 0 {
        return Err(RelError::Arithmetic("range step must be positive".into()));
    }
    let emit = |v: i64| {
        vec![
            Value::Int(lo),
            Value::Int(hi),
            Value::Int(step),
            Value::Int(v),
        ]
    };
    match &inputs[3] {
        Some(out) => {
            let Some(o) = out.as_int() else { return Ok(vec![]) };
            if o >= lo && o <= hi && (o - lo) % step == 0 {
                Ok(vec![emit(o)])
            } else {
                Ok(vec![])
            }
        }
        None => {
            let mut out = Vec::new();
            let mut v = lo;
            while v <= hi {
                out.push(emit(v));
                v += step;
            }
            Ok(out)
        }
    }
}

fn three(name: &str, inputs: &[Option<Value>]) -> RelResult<[Option<Value>; 3]> {
    if inputs.len() != 3 {
        return Err(RelError::internal(format!(
            "builtin `{name}` expects 3 arguments, got {}",
            inputs.len()
        )));
    }
    Ok([inputs[0].clone(), inputs[1].clone(), inputs[2].clone()])
}

/// Binary function with the last position free-or-check.
fn last_free2(
    name: &str,
    inputs: &[Option<Value>],
    f: impl Fn(&Value, &Value) -> RelResult<Value>,
) -> RelResult<Vec<Vec<Value>>> {
    match inputs {
        [Some(a), Some(b), out] => {
            let r = f(a, b)?;
            Ok(match out {
                Some(z) if !z.numeric_eq(&r) => vec![],
                _ => vec![vec![a.clone(), b.clone(), r]],
            })
        }
        _ => Err(RelError::unsafe_expr(format!(
            "builtin `{name}` needs its first two arguments bound"
        ))),
    }
}

/// Unary function: `f(in) = out`.
fn unary(
    name: &str,
    inputs: &[Option<Value>],
    f: impl Fn(&Value) -> RelResult<Value>,
) -> RelResult<Vec<Vec<Value>>> {
    match inputs {
        [Some(a), out] => {
            let r = f(a)?;
            Ok(match out {
                Some(z) if !z.numeric_eq(&r) => vec![],
                _ => vec![vec![a.clone(), r]],
            })
        }
        _ => Err(RelError::unsafe_expr(format!(
            "builtin `{name}` needs its argument bound"
        ))),
    }
}

/// Binary check (no outputs).
fn check2(
    name: &str,
    inputs: &[Option<Value>],
    f: impl Fn(&Value, &Value) -> RelResult<bool>,
) -> RelResult<Vec<Vec<Value>>> {
    match inputs {
        [Some(a), Some(b)] => Ok(if f(a, b)? {
            vec![vec![a.clone(), b.clone()]]
        } else {
            vec![]
        }),
        _ => Err(RelError::unsafe_expr(format!(
            "builtin `{name}` needs both arguments bound"
        ))),
    }
}

fn type_test(inputs: &[Option<Value>], f: impl Fn(&Value) -> bool) -> RelResult<Vec<Vec<Value>>> {
    match inputs {
        [Some(v)] => Ok(if f(v) { vec![vec![v.clone()]] } else { vec![] }),
        _ => Err(RelError::unsafe_expr(
            "type tests need their argument bound",
        )),
    }
}

/// Anchored glob matching with `*` (any sequence) and `?` (one char).
fn glob_match(pattern: &str, s: &str) -> bool {
    fn rec(p: &[char], s: &[char]) -> bool {
        match p.split_first() {
            None => s.is_empty(),
            Some(('*', rest)) => (0..=s.len()).any(|i| rec(rest, &s[i..])),
            Some(('?', rest)) => !s.is_empty() && rec(rest, &s[1..]),
            Some((c, rest)) => s.first() == Some(c) && rec(rest, &s[1..]),
        }
    }
    let p: Vec<char> = pattern.chars().collect();
    let sc: Vec<char> = s.chars().collect();
    rec(&p, &sc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn some(v: i64) -> Option<Value> {
        Some(Value::Int(v))
    }

    #[test]
    fn add_forward_and_inverse() {
        // add(2, 3, ?) = 5
        let r = solve("rel_primitive_add", &[some(2), some(3), None]).unwrap();
        assert_eq!(r, vec![vec![Value::int(2), Value::int(3), Value::int(5)]]);
        // add(?, 5, 15): x = 10 — the DiscountedproductPrice pattern.
        let r = solve("rel_primitive_add", &[None, some(5), some(15)]).unwrap();
        assert_eq!(r[0][0], Value::int(10));
        // add(2, 3, 6): no tuple.
        let r = solve("rel_primitive_add", &[some(2), some(3), some(6)]).unwrap();
        assert!(r.is_empty());
    }

    #[test]
    fn subtract_inverses() {
        // subtract(j, 1, t): given t=4 solve j=5 (x free: x = z + y).
        let r = solve("rel_primitive_subtract", &[None, some(1), some(4)]).unwrap();
        assert_eq!(r[0][0], Value::int(5));
        // given x=5 solve y: y = x − z = 1.
        let r = solve("rel_primitive_subtract", &[some(5), None, some(4)]).unwrap();
        assert_eq!(r[0][1], Value::int(1));
    }

    #[test]
    fn multiply_exact_inverse_only() {
        let r = solve("rel_primitive_multiply", &[some(3), None, some(12)]).unwrap();
        assert_eq!(r[0][1], Value::int(4));
        let r = solve("rel_primitive_multiply", &[some(3), None, some(13)]).unwrap();
        assert!(r.is_empty());
        let r = solve("rel_primitive_multiply", &[some(0), None, some(5)]).unwrap();
        assert!(r.is_empty());
    }

    #[test]
    fn mixed_int_float_promotes() {
        let r = solve(
            "rel_primitive_add",
            &[Some(Value::float(0.5)), some(1), None],
        )
        .unwrap();
        assert_eq!(r[0][2], Value::float(1.5));
    }

    #[test]
    fn integer_division_truncates() {
        // (x - x%10)/10 for x = 57: (57-7)/10 = 5.
        let r = solve("rel_primitive_divide", &[some(50), some(10), None]).unwrap();
        assert_eq!(r[0][2], Value::int(5));
        let r = solve("rel_primitive_divide", &[some(1), some(0), None]).unwrap();
        assert!(r.is_empty());
    }

    #[test]
    fn modulo_psychological_pricing() {
        // 199 % 100 = 99 (§3.2).
        let r = solve("rel_primitive_modulo", &[some(199), some(100), None]).unwrap();
        assert_eq!(r[0][2], Value::int(99));
    }

    #[test]
    fn range_enumerates() {
        let r = range(&[some(1), some(4), some(1), None]).unwrap();
        let outs: Vec<i64> = r.iter().map(|t| t[3].as_int().unwrap()).collect();
        assert_eq!(outs, vec![1, 2, 3, 4]);
        // check mode
        let r = range(&[some(1), some(4), some(2), some(3)]).unwrap();
        assert_eq!(r.len(), 1);
        let r = range(&[some(1), some(4), some(2), some(2)]).unwrap();
        assert!(r.is_empty());
    }

    #[test]
    fn type_tests() {
        assert_eq!(solve("Int", &[some(3)]).unwrap().len(), 1);
        assert!(solve("Int", &[Some(Value::str("x"))]).unwrap().is_empty());
        assert_eq!(solve("String", &[Some(Value::str("x"))]).unwrap().len(), 1);
        assert_eq!(solve("Number", &[Some(Value::float(1.0))]).unwrap().len(), 1);
    }

    #[test]
    fn min_max() {
        let r = solve("rel_primitive_minimum", &[some(3), some(7), None]).unwrap();
        assert_eq!(r[0][2], Value::int(3));
        let r = solve("rel_primitive_maximum", &[some(3), some(7), None]).unwrap();
        assert_eq!(r[0][2], Value::int(7));
    }

    #[test]
    fn strings() {
        let r = solve(
            "rel_primitive_concat",
            &[Some(Value::str("ab")), Some(Value::str("cd")), None],
        )
        .unwrap();
        assert_eq!(r[0][2], Value::str("abcd"));
        let r = solve("rel_primitive_string_length", &[Some(Value::str("héllo")), None]).unwrap();
        assert_eq!(r[0][1], Value::int(5));
    }

    #[test]
    fn glob() {
        assert!(glob_match("P*", "Pmt1"));
        assert!(glob_match("?1", "P1"));
        assert!(!glob_match("P?", "Pmt1"));
        assert!(glob_match("*", ""));
    }

    #[test]
    fn fold_step_works() {
        let v = fold_step("rel_primitive_add", &Value::int(10), &Value::int(5)).unwrap();
        assert_eq!(v, Value::int(15));
    }

    #[test]
    fn overflow_detected() {
        let r = solve("rel_primitive_add", &[some(i64::MAX), some(1), None]);
        assert!(matches!(r, Err(RelError::Arithmetic(_))));
    }
}
