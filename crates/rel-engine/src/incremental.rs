//! Incremental view maintenance: delta propagation under base-table
//! change.
//!
//! The paper's system evaluates transactions *incrementally* — derived
//! relations are maintained under base-relation change instead of being
//! recomputed from scratch (§6). This module is that evaluation mode for
//! our engine: given the **pre-state fixpoint** of a module (the full
//! EDB ∪ IDB relation state of a previous materialization, captured in a
//! [`PreState`]) and a database that has since changed in a *known* set
//! of base relations, [`materialize_incremental`] re-derives only what
//! the change can actually affect and produces relation state
//! **byte-identical** to a from-scratch [`crate::fixpoint::materialize`]
//! run over the new database.
//!
//! # The cone / delta-seeding model
//!
//! Which base relations changed is detected structurally, not by diffing:
//! every [`rel_core::Relation`] carries a globally unique *generation*
//! that moves exactly when its tuple set does, so comparing the
//! generations recorded in the [`PreState`] against the new database
//! yields the touched set in O(#relations). From the touched set,
//! [`rel_sema::ir::Module::dependent_cone`] — per-stratum read sets
//! joined with the stratum dependency DAG — gives the *dependent cone*:
//! every stratum whose result could differ. The engine then walks the
//! strata in dependency order and treats each one in the cheapest sound
//! way:
//!
//! * **Outside the cone** — the result cannot have changed: the
//!   pre-state relation is reused with an O(1) copy-on-write pointer
//!   bump. No rule is evaluated.
//! * **In the cone, but no input actually changed** — the cone is an
//!   over-approximation (an upstream stratum may re-derive exactly its
//!   old value), so each in-cone stratum first *value-compares* its
//!   inputs against the pre-state (cheap: generation, then length, then
//!   cached fingerprint, before any element-wise walk) and reuses the
//!   pre-state result when nothing moved.
//! * **Monotone recursive strata with grown inputs** — *delta-seeded
//!   semi-naive restart*. The SCC relations are seeded with their
//!   pre-state fixpoint (the "current" overlay); for every changed input
//!   `I` the engine installs `ΔI = new(I) ∖ old(I)` and evaluates, for
//!   each rule, one variant per occurrence of a changed input with that
//!   occurrence reading `ΔI` (the new/full formulation — other
//!   occurrences read the full new value). The resulting novel tuples
//!   become the seed Δ of the ordinary semi-naive loop, which then runs
//!   to fixpoint exactly as a from-scratch evaluation would — but
//!   starting from the pre-state instead of from nothing. This is sound
//!   precisely when every changed input is read only *positively* and
//!   only **grew**: monotonicity guarantees the pre-state fixpoint is
//!   contained in the new one, and the least fixpoint above a subset of
//!   the answer is the answer.
//! * **Everything else in the cone** — non-monotone strata (negation,
//!   aggregation, partial-fixpoint iteration), non-recursive strata
//!   (already a single pass), strata whose own EDB seed was touched, and
//!   monotone strata facing *deletions* or changed negatively-read
//!   inputs are recomputed, but only that stratum, from upstream results
//!   that were themselves reused or incrementally maintained. Deletion
//!   deltas through recursion (counting / DRed) are future work — the
//!   fallback keeps them correct today.
//!
//! Because every path either reuses a provably unchanged value or re-runs
//! the stock evaluator over correct inputs, the final relation state —
//! contents *and* iteration order, since relations are sorted sets — is
//! byte-identical to full re-materialization (the randomized
//! `incremental_equivalence` suite drives inserts *and* deletes through
//! both paths and compares flattened states).
//!
//! The subsystem is wired into [`crate::Session`] (a bounded per-module
//! fixpoint cache makes repeated queries and `Session::transact` calls
//! incremental automatically) and [`crate::Transaction::commit`] (the
//! commit-time constraint re-check re-verifies only constraints in the
//! cone, re-deriving their inputs incrementally). Setting the environment
//! variable `REL_INCREMENTAL=0` (or using
//! [`crate::Session::set_incremental`]) falls back to full
//! re-materialization everywhere.

use crate::env::Env;
use crate::eval::{EvalCtx, SharedIndexCache};
use crate::fixpoint::{
    count_scc_refs, delta_name, delta_variant, eval_stratum, materialize_with_cache,
    scc_delta_variants, semi_naive_loop,
};
use crate::profile::{StratumAction, StratumProfile};
use rel_core::{Database, Name, RelResult, Relation};
use rel_sema::ir::{EvalMode, Module, Stratum};
use std::collections::{BTreeMap, BTreeSet};

/// The default incremental-maintenance switch for this process: the
/// `REL_INCREMENTAL` environment variable, off when set to `0`, `false`,
/// `off`, or `no` (case-insensitive), on otherwise (including unset).
pub fn env_enabled() -> bool {
    match std::env::var("REL_INCREMENTAL") {
        Ok(v) => !matches!(
            v.trim().to_ascii_lowercase().as_str(),
            "0" | "false" | "off" | "no"
        ),
        Err(_) => true,
    }
}

/// A captured pre-state: the full relation state of one materialization
/// of a module, plus the generation of every base relation of the
/// database it ran against. Cloning is O(#relations) pointer bumps.
///
/// The generations are what make reuse sound without trusting the
/// caller: generations are globally unique and move exactly when a
/// relation's tuple set does, so `base_gens[name] ==
/// db.get(name).generation()` *proves* the base relation is unchanged —
/// even across session clones, aborted transactions, or direct
/// `db_mut()` edits the engine never saw.
#[derive(Clone, Debug)]
pub struct PreState {
    /// Generation of every base relation at capture time.
    base_gens: BTreeMap<Name, u64>,
    /// The materialized relation state (EDB ∪ IDB).
    state: BTreeMap<Name, Relation>,
}

impl PreState {
    /// Capture the pre-state of a finished materialization: `db` is the
    /// database it evaluated against (including any injected `?param`
    /// relations), `state` its resulting relation map.
    pub fn capture(db: &Database, state: &BTreeMap<Name, Relation>) -> Self {
        PreState {
            base_gens: db.iter().map(|(n, r)| (n.clone(), r.generation())).collect(),
            state: state.clone(),
        }
    }

    /// The captured relation state.
    pub fn state(&self) -> &BTreeMap<Name, Relation> {
        &self.state
    }

    /// The base relations of `db` that changed (or appeared, or vanished)
    /// since this pre-state was captured, detected by generation
    /// comparison — never by content diffing.
    pub fn touched_in(&self, db: &Database) -> BTreeSet<Name> {
        let mut touched = BTreeSet::new();
        for (n, r) in db.iter() {
            if self.base_gens.get(n) != Some(&r.generation()) {
                touched.insert(n.clone());
            }
        }
        for n in self.base_gens.keys() {
            if db.get(n).is_none() {
                touched.insert(n.clone());
            }
        }
        touched
    }
}

/// How [`materialize_incremental_with_stats`] handled each stratum.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IncrementalStats {
    /// Strata reused wholesale from the pre-state (out of the cone, or in
    /// the cone with value-identical inputs): O(1) per relation.
    pub reused: usize,
    /// Monotone recursive strata restarted semi-naively from the
    /// pre-state fixpoint with input-delta seeding.
    pub delta_seeded: usize,
    /// Strata re-evaluated from scratch (over reused/maintained inputs).
    pub recomputed: usize,
}

/// [`materialize_incremental_with_stats`] without the stats.
pub fn materialize_incremental(
    module: &Module,
    pre: &PreState,
    db: &Database,
    cache: SharedIndexCache,
) -> RelResult<BTreeMap<Name, Relation>> {
    materialize_incremental_with_stats(module, pre, db, cache).map(|(rels, _)| rels)
}

/// Re-derive the module's relation state over `db`, reusing everything
/// the changed base relations cannot affect. The result is byte-identical
/// to `materialize_with_cache(module, db, cache)`; see the module docs
/// for the maintenance strategy. Falls back to full materialization for
/// modules without cone metadata (hand-assembled `Module`s).
pub fn materialize_incremental_with_stats(
    module: &Module,
    pre: &PreState,
    db: &Database,
    cache: SharedIndexCache,
) -> RelResult<(BTreeMap<Name, Relation>, IncrementalStats)> {
    let n = module.strata.len();
    if module.stratum_reads.len() != n || module.stratum_deps.len() != n {
        let rels = materialize_with_cache(module, db, cache)?;
        let stats = IncrementalStats { recomputed: n, ..Default::default() };
        note_incremental_stats(&stats);
        return Ok((rels, stats));
    }
    let touched = pre.touched_in(db);
    let cone: BTreeSet<usize> = module.dependent_cone(&touched).into_iter().collect();

    // Seed exactly like a full run: every base relation, O(1) clones.
    let mut rels: BTreeMap<Name, Relation> =
        db.iter().map(|(name, r)| (name.clone(), r.clone())).collect();
    let mut stats = IncrementalStats::default();

    // Walk the strata in dependency order: out-of-cone results are the
    // pre-state's (O(1) pointer bumps), in-cone strata are maintained.
    // An out-of-cone stratum whose predicates the pre-state does not
    // cover (a `PreState` captured from a *different* module) cannot be
    // reused — recompute it, keeping the byte-identical contract even
    // for that misuse.
    let sink = cache.profile();
    for (i, stratum) in module.strata.iter().enumerate() {
        if cone.contains(&i) {
            maintain_stratum(module, &mut rels, i, pre, &touched, &cone, &cache, &mut stats)?;
        } else if pre_covers(module, pre, stratum) {
            for p in &stratum.preds {
                if let Some(r) = pre.state.get(p) {
                    rels.insert(p.clone(), r.clone());
                }
            }
            stats.reused += 1;
            if let Some(sink) = &sink {
                sink.push_stratum(reused_record(stratum));
            }
        } else {
            // `eval_stratum` pushes an "evaluated" record when profiling;
            // relabel it with the incremental classification.
            eval_stratum(module, &mut rels, stratum, &cache)?;
            stats.recomputed += 1;
            if let Some(sink) = &sink {
                sink.relabel_last(StratumAction::Recomputed);
            }
        }
    }

    cache.prune_stale(&rels);
    note_incremental_stats(&stats);
    Ok((rels, stats))
}

/// Fold one incremental run's per-stratum classification into the
/// process-wide registry (when metrics are on).
fn note_incremental_stats(stats: &IncrementalStats) {
    if crate::metrics::enabled() {
        let r = crate::metrics::registry();
        r.strata_reused.add(stats.reused as u64);
        r.strata_delta_restarted.add(stats.delta_seeded as u64);
        r.strata_recomputed.add(stats.recomputed as u64);
    }
}

/// A profile record for a stratum reused wholesale (O(1) pointer bumps —
/// no wall time or kernel counts worth attributing).
fn reused_record(stratum: &Stratum) -> StratumProfile {
    StratumProfile {
        preds: stratum.preds.iter().map(|p| p.to_string()).collect(),
        recursive: stratum.recursive,
        action: StratumAction::Reused,
        wall: std::time::Duration::ZERO,
        counts: Default::default(),
    }
}

/// Does the pre-state hold a result for every materialized predicate of
/// the stratum? Always true for a `PreState` captured from this module's
/// own materialization.
fn pre_covers(module: &Module, pre: &PreState, stratum: &Stratum) -> bool {
    stratum.preds.iter().all(|p| {
        pre.state.contains_key(p)
            || matches!(
                module.pred_info.get(p).map(|i| &i.mode),
                Some(EvalMode::Demand { .. })
            )
    })
}

/// Bring one in-cone stratum up to date against `rels` (which already
/// holds the new base relations and every earlier stratum's result).
#[allow(clippy::too_many_arguments)]
fn maintain_stratum(
    module: &Module,
    rels: &mut BTreeMap<Name, Relation>,
    idx: usize,
    pre: &PreState,
    touched: &BTreeSet<Name>,
    cone: &BTreeSet<usize>,
    cache: &SharedIndexCache,
    stats: &mut IncrementalStats,
) -> RelResult<()> {
    let stratum: &Stratum = &module.strata[idx];
    let reads = &module.stratum_reads[idx];
    let pred_set: BTreeSet<&Name> = stratum.preds.iter().collect();

    // Did a touched base relation feed one of this stratum's own EDB
    // seeds? Its old base contribution cannot be separated from the
    // pre-state fixpoint, so neither reuse nor delta seeding applies.
    let own_touched = stratum.preds.iter().any(|p| touched.contains(p));

    // A reusable pre-state must actually cover the stratum's materialized
    // predicates (it always does when captured from this module).
    let pre_complete = pre_covers(module, pre, stratum);

    // Diff this stratum's inputs against the pre-state. Demand-driven
    // inputs are not materialized in `rels`; if such an input's stratum
    // sits in the cone its call-time value may differ in ways we cannot
    // diff, which blocks both reuse and delta seeding.
    let mut demand_blocked = false;
    let mut changed: BTreeMap<&Name, (Relation, Relation)> = BTreeMap::new();
    for input in reads.all() {
        if pred_set.contains(input) || changed.contains_key(input) {
            continue;
        }
        if let Some(info) = module.pred_info.get(input) {
            if matches!(info.mode, EvalMode::Demand { .. }) {
                demand_blocked |= cone.contains(&info.stratum);
                continue;
            }
        }
        let old = pre.state.get(input).cloned().unwrap_or_default();
        let new = rels.get(input).cloned().unwrap_or_default();
        if old != new {
            changed.insert(input, (old, new));
        }
    }

    let sink = cache.profile();
    if pre_complete && !own_touched && !demand_blocked {
        if changed.is_empty() {
            // Every input re-derived to its old value: so does this
            // stratum.
            for p in &stratum.preds {
                if let Some(r) = pre.state.get(p) {
                    rels.insert(p.clone(), r.clone());
                }
            }
            stats.reused += 1;
            if let Some(sink) = &sink {
                sink.push_stratum(reused_record(stratum));
            }
            return Ok(());
        }
        if stratum.recursive && stratum.monotone {
            // Delta-seeded restart applies when every changed input is
            // read only positively and only grew (|new ∖ old| makes the
            // superset check a length comparison).
            let mut deltas: BTreeMap<Name, Relation> = BTreeMap::new();
            let mut eligible = true;
            for (input, (old, new)) in &changed {
                if reads.reads_negatively(input) {
                    eligible = false;
                    break;
                }
                let grown = new.minus(old);
                if old.len() + grown.len() != new.len() {
                    eligible = false; // a tuple was deleted: DRed is future work
                    break;
                }
                deltas.insert((*input).clone(), grown);
            }
            if eligible {
                let before = sink.as_ref().map(|s| s.counts());
                let start = std::time::Instant::now();
                semi_naive_restart(module, rels, &stratum.preds, pre, deltas, cache)?;
                stats.delta_seeded += 1;
                if let (Some(sink), Some(before)) = (&sink, before) {
                    sink.push_stratum(StratumProfile {
                        preds: stratum.preds.iter().map(|p| p.to_string()).collect(),
                        recursive: stratum.recursive,
                        action: StratumAction::DeltaRestarted,
                        wall: start.elapsed(),
                        counts: sink.counts().since(&before),
                    });
                }
                return Ok(());
            }
        }
    }

    // Recompute just this stratum from its current (correct) inputs.
    // (`eval_stratum` pushes an "evaluated" record when profiling.)
    eval_stratum(module, rels, stratum, cache)?;
    stats.recomputed += 1;
    if let Some(sink) = &sink {
        sink.relabel_last(StratumAction::Recomputed);
    }
    Ok(())
}

/// Restart a monotone recursive stratum's semi-naive fixpoint from the
/// pre-state: seed the SCC relations with their previous fixpoint,
/// derive the initial Δ from the changed inputs' deltas (one rule
/// variant per changed-input occurrence, that occurrence reading `ΔI`),
/// and hand off to the stock semi-naive loop.
fn semi_naive_restart(
    module: &Module,
    rels: &mut BTreeMap<Name, Relation>,
    preds: &[Name],
    pre: &PreState,
    input_deltas: BTreeMap<Name, Relation>,
    cache: &SharedIndexCache,
) -> RelResult<()> {
    debug_assert!(!input_deltas.is_empty());
    // The accumulated "current" value starts at the previous fixpoint —
    // guaranteed a subset of the new one by monotonicity in the grown
    // inputs.
    for p in preds {
        rels.insert(p.clone(), pre.state.get(p).cloned().unwrap_or_default());
    }
    // Seed Δ: novel derivations that use at least one new input tuple.
    let changed_set: BTreeSet<&Name> = input_deltas.keys().collect();
    for (input, d) in &input_deltas {
        rels.insert(delta_name(input), d.clone());
    }
    let mut delta: BTreeMap<Name, Relation> = BTreeMap::new();
    {
        let cx = EvalCtx::with_cache(module, rels, cache.clone());
        for p in preds {
            let mut fresh = Relation::new();
            for rule in module.rules_for(p) {
                let occurrences = count_scc_refs(rule, &changed_set);
                for focus in 0..occurrences {
                    let variant = delta_variant(rule, &changed_set, focus);
                    fresh.absorb(&cx.eval_rule(&variant, Env::new(variant.vars.len()))?);
                }
            }
            if let Some(current) = rels.get(p) {
                fresh.minus_in_place(current);
            }
            delta.insert(p.clone(), fresh);
        }
    }
    for input in input_deltas.keys() {
        rels.remove(&delta_name(input));
    }
    for p in preds {
        let d = &delta[p];
        if !d.is_empty() {
            rels.get_mut(p).expect("seeded above").absorb(d);
        }
    }
    let variants = scc_delta_variants(module, preds);
    semi_naive_loop(module, rels, preds, cache, &variants, delta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rel_core::tuple;

    fn edge_db(edges: &[(i64, i64)]) -> Database {
        let mut db = Database::new();
        for &(a, b) in edges {
            db.insert("E", tuple![a, b]);
        }
        db
    }

    const TC: &str = "def TC(x,y) : E(x,y)\n\
                      def TC(x,y) : exists((z) | E(x,z) and TC(z,y))";

    fn flatten(rels: &BTreeMap<Name, Relation>) -> Vec<(Name, Vec<rel_core::Tuple>)> {
        rels.iter().map(|(n, r)| (n.clone(), r.iter().cloned().collect())).collect()
    }

    #[test]
    fn insert_delta_matches_full_and_delta_seeds() {
        let module = rel_sema::compile(TC).unwrap();
        let db0 = edge_db(&[(1, 2), (2, 3), (3, 4)]);
        let pre_rels = materialize_with_cache(&module, &db0, SharedIndexCache::default()).unwrap();
        let pre = PreState::capture(&db0, &pre_rels);

        let mut db1 = db0.clone();
        db1.insert("E", tuple![4, 5]);
        let (inc, stats) = materialize_incremental_with_stats(
            &module,
            &pre,
            &db1,
            SharedIndexCache::default(),
        )
        .unwrap();
        let full = materialize_with_cache(&module, &db1, SharedIndexCache::default()).unwrap();
        assert_eq!(flatten(&inc), flatten(&full));
        assert_eq!(stats.delta_seeded, 1, "TC stratum must take the restart path: {stats:?}");
    }

    #[test]
    fn delete_falls_back_to_stratum_recompute_and_matches_full() {
        let module = rel_sema::compile(TC).unwrap();
        let db0 = edge_db(&[(1, 2), (2, 3), (3, 4)]);
        let pre_rels = materialize_with_cache(&module, &db0, SharedIndexCache::default()).unwrap();
        let pre = PreState::capture(&db0, &pre_rels);

        let mut db1 = db0.clone();
        db1.get_mut("E").remove(&tuple![2, 3]);
        let (inc, stats) = materialize_incremental_with_stats(
            &module,
            &pre,
            &db1,
            SharedIndexCache::default(),
        )
        .unwrap();
        let full = materialize_with_cache(&module, &db1, SharedIndexCache::default()).unwrap();
        assert_eq!(flatten(&inc), flatten(&full));
        assert_eq!(stats.delta_seeded, 0);
        assert!(stats.recomputed >= 1, "{stats:?}");
    }

    #[test]
    fn untouched_run_reuses_everything_by_pointer() {
        let module = rel_sema::compile(TC).unwrap();
        let db = edge_db(&[(1, 2), (2, 3)]);
        let pre_rels = materialize_with_cache(&module, &db, SharedIndexCache::default()).unwrap();
        let pre = PreState::capture(&db, &pre_rels);
        let (inc, stats) =
            materialize_incremental_with_stats(&module, &pre, &db, SharedIndexCache::default())
                .unwrap();
        assert_eq!(stats.recomputed + stats.delta_seeded, 0, "{stats:?}");
        let tc = rel_core::name("TC");
        assert!(
            inc[&tc].shares_storage(&pre_rels[&tc]),
            "an untouched fixpoint must be reused by pointer, not recomputed"
        );
    }

    #[test]
    fn out_of_cone_strata_share_storage_with_pre_state() {
        // Two disjoint TCs: touching E1 must leave TC2 pointer-shared.
        let module = rel_sema::compile(
            "def TC1(x,y) : E1(x,y)\n\
             def TC1(x,y) : exists((z) | E1(x,z) and TC1(z,y))\n\
             def TC2(x,y) : E2(x,y)\n\
             def TC2(x,y) : exists((z) | E2(x,z) and TC2(z,y))",
        )
        .unwrap();
        let mut db0 = Database::new();
        for (a, b) in [(1, 2), (2, 3)] {
            db0.insert("E1", tuple![a, b]);
            db0.insert("E2", tuple![a, b]);
        }
        let pre_rels = materialize_with_cache(&module, &db0, SharedIndexCache::default()).unwrap();
        let pre = PreState::capture(&db0, &pre_rels);
        let mut db1 = db0.clone();
        db1.insert("E1", tuple![3, 4]);
        let (inc, stats) = materialize_incremental_with_stats(
            &module,
            &pre,
            &db1,
            SharedIndexCache::default(),
        )
        .unwrap();
        let full = materialize_with_cache(&module, &db1, SharedIndexCache::default()).unwrap();
        assert_eq!(flatten(&inc), flatten(&full));
        let tc2 = rel_core::name("TC2");
        assert!(inc[&tc2].shares_storage(&pre_rels[&tc2]), "TC2 is outside the cone");
        assert_eq!(stats.delta_seeded, 1, "{stats:?}");
    }

    #[test]
    fn negatively_read_input_change_forces_recompute() {
        // Reach is monotone-recursive but reads Block under negation: a
        // grown Block can *shrink* Reach, so the restart must not fire.
        let module = rel_sema::compile(
            "def Reach(x) : Start(x)\n\
             def Reach(y) : exists((x) | Reach(x) and E(x,y) and not Block(y))",
        )
        .unwrap();
        let mut db0 = edge_db(&[(1, 2), (2, 3), (3, 4)]);
        db0.insert("Start", tuple![1]);
        db0.insert("Block", tuple![9]);
        let pre_rels = materialize_with_cache(&module, &db0, SharedIndexCache::default()).unwrap();
        let pre = PreState::capture(&db0, &pre_rels);

        let mut db1 = db0.clone();
        db1.insert("Block", tuple![3]); // grows, but read negatively
        let (inc, stats) = materialize_incremental_with_stats(
            &module,
            &pre,
            &db1,
            SharedIndexCache::default(),
        )
        .unwrap();
        let full = materialize_with_cache(&module, &db1, SharedIndexCache::default()).unwrap();
        assert_eq!(flatten(&inc), flatten(&full));
        assert_eq!(stats.delta_seeded, 0, "{stats:?}");
        let reach = rel_core::name("Reach");
        assert!(inc[&reach].len() < pre_rels[&reach].len(), "Reach must shrink");
    }

    #[test]
    fn touched_own_seed_forces_recompute() {
        // Inserting directly into the base relation backing TC's own EDB
        // seed: the restart cannot tell old seed tuples apart from derived
        // ones, so the stratum recomputes — and still matches full.
        let module = rel_sema::compile(TC).unwrap();
        let mut db0 = edge_db(&[(1, 2), (2, 3)]);
        db0.insert("TC", tuple![7, 8]);
        let pre_rels = materialize_with_cache(&module, &db0, SharedIndexCache::default()).unwrap();
        let pre = PreState::capture(&db0, &pre_rels);
        let mut db1 = db0.clone();
        db1.insert("TC", tuple![8, 9]);
        let (inc, stats) = materialize_incremental_with_stats(
            &module,
            &pre,
            &db1,
            SharedIndexCache::default(),
        )
        .unwrap();
        let full = materialize_with_cache(&module, &db1, SharedIndexCache::default()).unwrap();
        assert_eq!(flatten(&inc), flatten(&full));
        assert_eq!(stats.delta_seeded, 0, "{stats:?}");
    }

    #[test]
    fn aggregation_over_touched_input_recomputes_and_matches() {
        let module = rel_sema::compile(
            "def agg_sum[{A}] : reduce[add, A]\n\
             def Tot(x,s) : exists((q) | E(x,q)) and s = agg_sum[(v) : E(x,v)]",
        )
        .unwrap();
        let db0 = edge_db(&[(1, 10), (1, 20), (2, 5)]);
        let pre_rels = materialize_with_cache(&module, &db0, SharedIndexCache::default()).unwrap();
        let pre = PreState::capture(&db0, &pre_rels);
        let mut db1 = db0.clone();
        db1.insert("E", tuple![1, 30]);
        let inc =
            materialize_incremental(&module, &pre, &db1, SharedIndexCache::default()).unwrap();
        let full = materialize_with_cache(&module, &db1, SharedIndexCache::default()).unwrap();
        assert_eq!(flatten(&inc), flatten(&full));
        assert!(inc[&rel_core::name("Tot")].contains(&tuple![1, 60]));
    }

    #[test]
    fn pfp_stratum_in_cone_recomputes_and_matches() {
        let module = rel_sema::compile(
            "def Win(x) : exists((y) | Move(x,y) and not Win(y))",
        )
        .unwrap();
        let mut db0 = Database::new();
        for (a, b) in [(1, 2), (2, 3), (3, 4)] {
            db0.insert("Move", tuple![a, b]);
        }
        let pre_rels = materialize_with_cache(&module, &db0, SharedIndexCache::default()).unwrap();
        let pre = PreState::capture(&db0, &pre_rels);
        let mut db1 = db0.clone();
        db1.insert("Move", tuple![4, 5]);
        let (inc, stats) = materialize_incremental_with_stats(
            &module,
            &pre,
            &db1,
            SharedIndexCache::default(),
        )
        .unwrap();
        let full = materialize_with_cache(&module, &db1, SharedIndexCache::default()).unwrap();
        assert_eq!(flatten(&inc), flatten(&full));
        assert_eq!(stats.delta_seeded, 0, "PFP strata never delta-seed: {stats:?}");
    }

    #[test]
    fn foreign_pre_state_still_yields_full_state() {
        // A PreState captured from a *different* (here: empty) module
        // covers none of this module's predicates; the engine must
        // recompute rather than silently return EDB-only state.
        let module = rel_sema::compile(TC).unwrap();
        let db = edge_db(&[(1, 2), (2, 3)]);
        let foreign = PreState::capture(&db, &BTreeMap::new());
        let (inc, stats) = materialize_incremental_with_stats(
            &module,
            &foreign,
            &db,
            SharedIndexCache::default(),
        )
        .unwrap();
        let full = materialize_with_cache(&module, &db, SharedIndexCache::default()).unwrap();
        assert_eq!(flatten(&inc), flatten(&full));
        assert!(inc.contains_key(&rel_core::name("TC")));
        assert!(stats.recomputed >= 1, "{stats:?}");
    }

    #[test]
    fn touched_in_detects_new_and_mutated_relations() {
        let db0 = edge_db(&[(1, 2)]);
        let rels = BTreeMap::new();
        let pre = PreState::capture(&db0, &rels);
        assert!(pre.touched_in(&db0).is_empty());
        let mut db1 = db0.clone();
        db1.insert("E", tuple![2, 3]);
        db1.insert("F", tuple![1]);
        let touched = pre.touched_in(&db1);
        assert!(touched.contains("E"));
        assert!(touched.contains("F"));
        assert_eq!(touched.len(), 2);
    }
}
