//! Leapfrog Triejoin — a worst-case-optimal multiway join
//! (Veldhuizen, ICDT 2014; cited by the paper in §7 as part of the
//! toolbox that makes GNF's many-joins style practical).
//!
//! Relations are stored as lexicographically sorted tuple arrays and
//! iterated as tries. The join processes one *join variable* at a time:
//! all iterators bound to the current variable "leapfrog" (mutually seek)
//! to their next common key; on agreement the join descends to the next
//! variable.
//!
//! This kernel is the engine's worst-case-optimal join substrate: the
//! general rule planner in [`crate::eval`] routes multi-atom
//! conjunctions through [`leapfrog_join`] (the paper's engine uses WCOJ
//! selectively for cyclic joins — triangles, paths-with-closure — where
//! the asymptotic separation from binary hash joins shows). The planner
//! permutes each atom's relation into the global variable order with
//! [`SortedRel::permuted`] and caches the result generation-keyed in the
//! shared index cache, so a trie is built once per relation state and
//! then shared read-only across fixpoint iterations and scheduler worker
//! threads; per-join state is only the lightweight trie-cursor stack.
//! The `REL_WCOJ` environment variable / `Session::set_wcoj` select the
//! routing mode (see [`crate::eval::WcojMode`]). The kernel is also used
//! directly by the E8 triangle benchmark via [`triangle_count_lftj`].

use rel_core::{Relation, Tuple, Value};

/// A relation stored as a sorted tuple array, viewed as a trie.
#[derive(Clone, Debug)]
pub struct SortedRel {
    tuples: Vec<Tuple>,
    arity: usize,
}

impl SortedRel {
    /// Build from tuples (sorted and deduplicated here). All tuples must
    /// share one arity.
    pub fn new(mut tuples: Vec<Tuple>) -> Self {
        tuples.sort();
        tuples.dedup();
        let arity = tuples.first().map(Tuple::arity).unwrap_or(0);
        assert!(
            tuples.iter().all(|t| t.arity() == arity),
            "SortedRel requires uniform arity"
        );
        SortedRel { tuples, arity }
    }

    /// Build from a [`Relation`].
    pub fn from_relation(rel: &Relation) -> Self {
        SortedRel::new(rel.iter().cloned().collect())
    }

    /// Build with columns permuted: output column `i` = input column
    /// `perm[i]`. Used to align an atom's columns with the global variable
    /// order. Tuples whose arity differs from `perm.len()` are skipped
    /// (an atom of arity *k* only ever matches *k*-tuples; relations may
    /// hold mixed arities).
    pub fn permuted(rel: &Relation, perm: &[usize]) -> Self {
        let tuples = rel
            .iter()
            .filter(|t| t.arity() == perm.len())
            .map(|t| {
                Tuple::from(
                    perm.iter().map(|&i| t.values()[i].clone()).collect::<Vec<_>>(),
                )
            })
            .collect();
        SortedRel::new(tuples)
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Is the relation empty?
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Arity.
    pub fn arity(&self) -> usize {
        self.arity
    }
}

/// A trie iterator over a [`SortedRel`]: a cursor at some depth, scoped to
/// the tuple range matching the current key prefix.
struct TrieIter<'a> {
    rel: &'a SortedRel,
    /// Stack of `(lo, hi)` ranges per open level; `ranges[d]` is the range
    /// of tuples matching the prefix chosen at levels `< d`. Starts empty
    /// (at the virtual root): `open()` descends into level 0.
    ranges: Vec<(usize, usize)>,
    /// Current position within the top range (points at the current key's
    /// first tuple).
    pos: usize,
    at_end: bool,
}

impl<'a> TrieIter<'a> {
    fn new(rel: &'a SortedRel) -> Self {
        TrieIter { rel, ranges: Vec::new(), pos: 0, at_end: rel.is_empty() }
    }

    fn depth(&self) -> usize {
        self.ranges.len() - 1
    }

    /// The key at the current level.
    fn key(&self) -> &'a Value {
        &self.rel.tuples[self.pos].values()[self.depth()]
    }

    /// End of the keys at this level?
    fn at_end(&self) -> bool {
        self.at_end
    }

    /// Range end of tuples sharing the current key (exclusive).
    fn key_end(&self) -> usize {
        let d = self.depth();
        let (_, hi) = self.ranges[d];
        let key = self.key();
        // Gallop to the end of the run of equal keys.
        let mut step = 1;
        let mut lo = self.pos;
        while lo + step < hi && &self.rel.tuples[lo + step].values()[d] == key {
            lo += step;
            step *= 2;
        }
        let mut hi2 = (lo + step).min(hi);
        // Binary search in (lo, hi2].
        while lo + 1 < hi2 {
            let mid = lo + (hi2 - lo) / 2;
            if &self.rel.tuples[mid].values()[d] == key {
                lo = mid;
            } else {
                hi2 = mid;
            }
        }
        lo + 1
    }

    /// Advance to the next distinct key at this level.
    fn next_key(&mut self) {
        let (_, hi) = self.ranges[self.depth()];
        let e = self.key_end();
        if e >= hi {
            self.at_end = true;
        } else {
            self.pos = e;
        }
    }

    /// Seek to the first key ≥ `target` at this level.
    fn seek(&mut self, target: &Value) {
        let d = self.depth();
        let (_, hi) = self.ranges[d];
        if self.at_end {
            return;
        }
        // Gallop forward.
        let mut lo = self.pos;
        let mut step = 1;
        while lo + step < hi && self.rel.tuples[lo + step].values()[d].cmp(target).is_lt() {
            lo += step;
            step *= 2;
        }
        let mut hi2 = (lo + step).min(hi);
        while lo < hi2 {
            let mid = lo + (hi2 - lo) / 2;
            if self.rel.tuples[mid].values()[d].cmp(target).is_lt() {
                lo = mid + 1;
            } else {
                hi2 = mid;
            }
        }
        if lo >= hi {
            self.at_end = true;
        } else {
            self.pos = lo;
        }
    }

    /// Descend one level: from the virtual root into level 0, or into the
    /// sub-trie of the current key.
    fn open(&mut self) {
        if self.ranges.is_empty() {
            self.ranges.push((0, self.rel.tuples.len()));
            self.pos = 0;
            self.at_end = self.rel.tuples.is_empty();
        } else {
            let end = self.key_end();
            self.ranges.push((self.pos, end));
            self.at_end = false;
            // pos stays: first tuple of the range is the first child key.
        }
    }

    /// Return to the parent level.
    fn up(&mut self) {
        let (lo, _) = self.ranges.pop().expect("up below root");
        self.pos = lo;
        self.at_end = false;
    }
}

/// One atom of a join query: a relation plus, per trie level, the global
/// join-variable index that level binds. Levels must be strictly
/// increasing in the global variable order (permute the relation with
/// [`SortedRel::permuted`] to arrange this). The atom is two borrows —
/// `Copy` — so a caller joining one atom set against many environments
/// can stamp out per-environment atom lists without cloning variable
/// vectors.
#[derive(Clone, Copy)]
pub struct JoinAtom<'a> {
    /// The (column-permuted) relation.
    pub rel: &'a SortedRel,
    /// `vars[d]` = global variable bound by trie level `d`.
    pub vars: &'a [usize],
}

/// Run a leapfrog triejoin over `atoms` with `nvars` join variables
/// (numbered `0..nvars` in join order). `emit` receives each result
/// binding. The join itself copies no tuples: iterators are range
/// cursors over the (shared, possibly cached) sorted storage, and the
/// binding handed to `emit` borrows the matched key values.
pub fn leapfrog_join(atoms: &mut [JoinAtom<'_>], nvars: usize, emit: &mut dyn FnMut(&[Value])) {
    for atom in atoms.iter() {
        if atom.rel.is_empty() {
            return;
        }
        assert_eq!(atom.vars.len(), atom.rel.arity(), "vars must cover all columns");
        assert!(
            atom.vars.windows(2).all(|w| w[0] < w[1]),
            "atom variables must be strictly increasing in join order"
        );
    }
    let mut iters: Vec<TrieIter<'_>> = atoms.iter().map(|a| TrieIter::new(a.rel)).collect();
    let mut binding: Vec<Value> = Vec::with_capacity(nvars);
    join_level(atoms, &mut iters, 0, nvars, &mut binding, emit);
}

/// Which iterators participate at variable `v`, by atom index.
fn participants(atoms: &[JoinAtom<'_>], v: usize) -> Vec<usize> {
    atoms
        .iter()
        .enumerate()
        .filter(|(_, a)| a.vars.contains(&v))
        .map(|(i, _)| i)
        .collect()
}

fn join_level(
    atoms: &[JoinAtom<'_>],
    iters: &mut [TrieIter<'_>],
    var: usize,
    nvars: usize,
    binding: &mut Vec<Value>,
    emit: &mut dyn FnMut(&[Value]),
) {
    if var == nvars {
        emit(binding);
        return;
    }
    let ps = participants(atoms, var);
    debug_assert!(!ps.is_empty(), "every variable needs at least one atom");
    // Enter this level: every participant descends one trie level (from
    // the virtual root for its first variable, from its current key
    // otherwise).
    for &i in &ps {
        iters[i].open();
    }
    loop {
        // Leapfrog search: find a common key or exhaust. The max is found
        // by reference comparison and cloned once (values are cheap
        // handles — ints or `Arc` strings — but p−1 needless clones per
        // probe still added up on hot joins).
        if ps.iter().any(|&i| iters[i].at_end()) {
            break;
        }
        let mut max_i = ps[0];
        for &i in &ps[1..] {
            if iters[i].key() > iters[max_i].key() {
                max_i = i;
            }
        }
        let max = iters[max_i].key().clone();
        let mut all_equal = true;
        for &i in &ps {
            if iters[i].key() != &max {
                iters[i].seek(&max);
                all_equal = false;
            }
        }
        if ps.iter().any(|&i| iters[i].at_end()) {
            break;
        }
        if !all_equal {
            continue;
        }
        // Match on `max`: descend to the next join variable.
        binding.push(max);
        join_level(atoms, iters, var + 1, nvars, binding, emit);
        binding.pop();
        // Advance one participant to continue the search.
        let first = ps[0];
        iters[first].next_key();
        if iters[first].at_end() {
            break;
        }
    }
    // Leave this level.
    for &i in &ps {
        iters[i].up();
    }
}

/// Count triangles `E(a,b) ∧ E(b,c) ∧ E(a,c)` with leapfrog triejoin.
pub fn triangle_count_lftj(edges: &Relation) -> usize {
    let r_ab = SortedRel::from_relation(edges); // (a, b)
    let r_bc = SortedRel::from_relation(edges); // (b, c)
    let r_ac = SortedRel::from_relation(edges); // (a, c)
    let mut atoms = [
        JoinAtom { rel: &r_ab, vars: &[0, 1] },
        JoinAtom { rel: &r_bc, vars: &[1, 2] },
        JoinAtom { rel: &r_ac, vars: &[0, 2] },
    ];
    let mut count = 0usize;
    leapfrog_join(&mut atoms, 3, &mut |_| count += 1);
    count
}

/// Count triangles with a binary hash-join plan: `(E ⋈ E) ⋈ E` — the
/// baseline whose intermediate result can be Θ(|E|²).
pub fn triangle_count_hash(edges: &Relation) -> usize {
    use std::collections::{HashMap, HashSet};
    let mut by_src: HashMap<&Value, Vec<&Value>> = HashMap::new();
    let mut edge_set: HashSet<(&Value, &Value)> = HashSet::new();
    for t in edges.iter() {
        let (a, b) = (&t.values()[0], &t.values()[1]);
        by_src.entry(a).or_default().push(b);
        edge_set.insert((a, b));
    }
    let mut count = 0usize;
    // First join: E(a,b) ⋈ E(b,c) materializes all paths of length 2.
    for t in edges.iter() {
        let (a, b) = (&t.values()[0], &t.values()[1]);
        if let Some(cs) = by_src.get(b) {
            for c in cs {
                // Second join: probe E(a,c).
                if edge_set.contains(&(a, *c)) {
                    count += 1;
                }
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use rel_core::tuple;

    fn edges(pairs: &[(i64, i64)]) -> Relation {
        Relation::from_tuples(pairs.iter().map(|&(a, b)| tuple![a, b]))
    }

    #[test]
    fn trie_iter_walk() {
        let rel = SortedRel::new(vec![tuple![1, 2], tuple![1, 3], tuple![2, 5]]);
        let mut it = TrieIter::new(&rel);
        it.open(); // virtual root → level 0
        assert_eq!(it.key(), &Value::int(1));
        it.open();
        assert_eq!(it.key(), &Value::int(2));
        it.next_key();
        assert_eq!(it.key(), &Value::int(3));
        it.next_key();
        assert!(it.at_end());
        it.up();
        it.next_key();
        assert_eq!(it.key(), &Value::int(2));
        it.open();
        assert_eq!(it.key(), &Value::int(5));
    }

    #[test]
    fn seek_gallops() {
        let rel = SortedRel::new((0..100).step_by(3).map(|i| tuple![i]).collect());
        let mut it = TrieIter::new(&rel);
        it.open();
        it.seek(&Value::int(50));
        assert_eq!(it.key(), &Value::int(51));
        it.seek(&Value::int(99));
        assert_eq!(it.key(), &Value::int(99));
        it.seek(&Value::int(100));
        assert!(it.at_end());
    }

    #[test]
    fn triangle_simple() {
        // 1→2→3→1 plus 1→3 gives exactly one directed triangle 1,2,3.
        let e = edges(&[(1, 2), (2, 3), (1, 3)]);
        assert_eq!(triangle_count_lftj(&e), 1);
        assert_eq!(triangle_count_hash(&e), 1);
    }

    #[test]
    fn no_triangles() {
        let e = edges(&[(1, 2), (2, 3), (3, 4)]);
        assert_eq!(triangle_count_lftj(&e), 0);
        assert_eq!(triangle_count_hash(&e), 0);
    }

    #[test]
    fn lftj_matches_hash_on_random_graphs() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            let n = 30i64;
            let pairs: Vec<(i64, i64)> = (0..200)
                .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
                .filter(|(a, b)| a != b)
                .collect();
            let e = edges(&pairs);
            assert_eq!(triangle_count_lftj(&e), triangle_count_hash(&e));
        }
    }

    #[test]
    fn two_way_join_is_intersection() {
        let a = SortedRel::new(vec![tuple![1], tuple![2], tuple![3]]);
        let b = SortedRel::new(vec![tuple![2], tuple![3], tuple![4]]);
        let mut atoms = [
            JoinAtom { rel: &a, vars: &[0] },
            JoinAtom { rel: &b, vars: &[0] },
        ];
        let mut out = Vec::new();
        leapfrog_join(&mut atoms, 1, &mut |vals| out.push(vals[0].clone()));
        assert_eq!(out, vec![Value::int(2), Value::int(3)]);
    }

    #[test]
    fn permuted_skips_foreign_arities() {
        // A relation holding 1-, 2- and 3-tuples, viewed as a binary atom
        // with swapped columns: only the 2-tuples survive, permuted.
        let mut rel = Relation::new();
        rel.insert(tuple![7]);
        rel.insert(tuple![1, 2]);
        rel.insert(tuple![3, 4]);
        rel.insert(tuple![5, 6, 7]);
        let s = SortedRel::permuted(&rel, &[1, 0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.arity(), 2);
        let mut atoms = [JoinAtom { rel: &s, vars: &[0, 1] }];
        let mut out = Vec::new();
        leapfrog_join(&mut atoms, 2, &mut |vals| out.push((vals[0].clone(), vals[1].clone())));
        assert_eq!(
            out,
            vec![
                (Value::int(2), Value::int(1)),
                (Value::int(4), Value::int(3)),
            ]
        );
    }

    #[test]
    fn empty_relation_short_circuits_before_arity_check() {
        // An empty SortedRel reports arity 0; the join must bail out on
        // emptiness instead of tripping the vars-cover-columns assertion.
        let empty = SortedRel::new(Vec::new());
        let full = SortedRel::new(vec![tuple![1, 2]]);
        let mut atoms = [
            JoinAtom { rel: &full, vars: &[0, 1] },
            JoinAtom { rel: &empty, vars: &[0, 1] },
        ];
        let mut emitted = 0;
        leapfrog_join(&mut atoms, 2, &mut |_| emitted += 1);
        assert_eq!(emitted, 0);
    }
}
