//! Leapfrog Triejoin — a worst-case-optimal multiway join
//! (Veldhuizen, ICDT 2014; cited by the paper in §7 as part of the
//! toolbox that makes GNF's many-joins style practical).
//!
//! Relations are viewed as lexicographically sorted tries and joined one
//! *join variable* at a time: all iterators bound to the current variable
//! "leapfrog" (mutually seek) to their next common key; on agreement the
//! join descends to the next variable.
//!
//! # Physical layouts
//!
//! A [`SortedRel`] never clones permuted tuples. It shares the source
//! relation's storage (an O(1) [`Relation`] clone) plus a sorted
//! *position* vector, and reads the cell at trie depth `d` through the
//! column permutation — the row fallback compares borrowed [`Value`]s.
//! When the relation carries a typed columnar projection
//! ([`rel_core::columnar`]) the trie additionally materializes its
//! columns *in trie order* (permuted, sorted — a cheap typed gather), so
//! every seek, gallop, and key comparison in the join runs over raw
//! primitives (`i64`, order-preserving floats, dictionary codes) via
//! [`Cell`] instead of boxed `Value` tags. Both layouts produce identical
//! join output; `REL_COLUMNAR=0` forces the row fallback.
//!
//! The same sorted-trie machinery backs the *fused rule kernels*
//! ([`project_emit`], [`merge_join_emit`]): single-rule shapes the
//! evaluator recognizes whole (projection, binary merge join) and
//! executes straight over trie cells — head tuples are emitted without
//! per-row environment clones, with an all-integer fast path that sorts
//! `(i64, i64)` head keys instead of boxed tuples.
//!
//! This kernel is the engine's worst-case-optimal join substrate: the
//! general rule planner in [`crate::eval`] routes multi-atom
//! conjunctions through [`leapfrog_join`] (the paper's engine uses WCOJ
//! selectively for cyclic joins — triangles, paths-with-closure — where
//! the asymptotic separation from binary hash joins shows). The planner
//! permutes each atom's relation into the global variable order with
//! [`SortedRel::permuted`] and caches the result generation-keyed in the
//! shared index cache, so a trie is built once per relation state and
//! then shared read-only across fixpoint iterations and scheduler worker
//! threads; per-join state is only the lightweight trie-cursor stack.
//! The `REL_WCOJ` environment variable / `Session::set_wcoj` select the
//! routing mode (see [`crate::eval::WcojMode`]). The kernel is also used
//! directly by the E8 triangle benchmark via [`triangle_count_lftj`].

use rel_core::columnar::{Cell, Column};
use rel_core::{Relation, Tuple, Value};

/// A relation viewed as a sorted trie: shared row storage, a position
/// vector sorted in permuted-column order, and (columnar mode) typed
/// columns materialized in trie order.
#[derive(Clone, Debug)]
pub struct SortedRel {
    /// Shared source rows (O(1) clone of the relation).
    rel: Relation,
    /// Sorted positions into `rel.as_slice()`; only rows whose arity
    /// matches the atom participate.
    order: Vec<u32>,
    /// `perm[d]` = source column read at trie depth `d`.
    perm: Vec<usize>,
    /// Typed columns in trie order (`cols[d][i]` = cell at depth `d` of
    /// the `i`-th sorted row); present when the source relation has a
    /// columnar projection and the switch is on.
    cols: Option<Vec<Column>>,
    arity: usize,
}

impl SortedRel {
    /// Build from tuples (sorted and deduplicated here). All tuples must
    /// share one arity.
    pub fn new(tuples: Vec<Tuple>) -> Self {
        let arity = tuples.first().map(Tuple::arity).unwrap_or(0);
        assert!(
            tuples.iter().all(|t| t.arity() == arity),
            "SortedRel requires uniform arity"
        );
        let rel = Relation::from_tuples(tuples);
        let perm: Vec<usize> = (0..arity).collect();
        SortedRel::permuted(&rel, &perm)
    }

    /// Build from a [`Relation`] (which must be of uniform arity).
    pub fn from_relation(rel: &Relation) -> Self {
        let arity = rel.uniform_arity().unwrap_or(0);
        assert!(
            rel.is_empty() || rel.uniform_arity().is_some(),
            "SortedRel requires uniform arity"
        );
        let perm: Vec<usize> = (0..arity).collect();
        SortedRel::permuted(rel, &perm)
    }

    /// Build with columns permuted: trie depth `d` reads input column
    /// `perm[d]`. Used to align an atom's columns with the global
    /// variable order. Tuples whose arity differs from `perm.len()` are
    /// skipped (an atom of arity *k* only ever matches *k*-tuples;
    /// relations may hold mixed arities). No permuted tuples are
    /// materialized — the trie sorts positions and reads through the
    /// permutation (typed columns when the projection exists).
    pub fn permuted(rel: &Relation, perm: &[usize]) -> Self {
        let rows = rel.as_slice();
        let mut order: Vec<u32> = (0..rows.len() as u32)
            .filter(|&i| rows[i as usize].arity() == perm.len())
            .collect();
        let projection = if order.len() == rows.len() {
            rel.columnar().cloned()
        } else {
            None // mixed arity: no projection exists anyway
        };
        let cols = match &projection {
            Some(proj) => {
                let pcols: Vec<&Column> = perm.iter().map(|&c| &proj.cols()[c]).collect();
                order.sort_unstable_by(|&a, &b| {
                    let (a, b) = (a as usize, b as usize);
                    pcols
                        .iter()
                        .map(|col| col.cmp_rows(a, col, b))
                        .find(|o| o.is_ne())
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
                order.dedup_by(|&mut a, &mut b| {
                    let (a, b) = (a as usize, b as usize);
                    pcols.iter().all(|col| col.cmp_rows(a, col, b).is_eq())
                });
                Some(perm.iter().map(|&c| proj.cols()[c].gather(&order)).collect())
            }
            None => {
                order.sort_unstable_by(|&a, &b| {
                    let (va, vb) =
                        (rows[a as usize].values(), rows[b as usize].values());
                    perm.iter()
                        .map(|&c| va[c].cmp(&vb[c]))
                        .find(|o| o.is_ne())
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
                order.dedup_by(|&mut a, &mut b| {
                    let (va, vb) =
                        (rows[a as usize].values(), rows[b as usize].values());
                    perm.iter().all(|&c| va[c] == vb[c])
                });
                None
            }
        };
        let arity = if order.is_empty() { 0 } else { perm.len() };
        SortedRel { rel: rel.clone(), order, perm: perm.to_vec(), cols, arity }
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Is the relation empty?
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Is the trie running on typed columns (vs the boxed-row fallback)?
    pub fn is_columnar(&self) -> bool {
        self.cols.is_some()
    }

    /// The cell at sorted position `pos`, trie depth `d` — a raw typed
    /// cell in columnar mode, a borrowed boxed value otherwise.
    #[inline]
    fn cell(&self, pos: usize, d: usize) -> Cell<'_> {
        match &self.cols {
            Some(cols) => cols[d].cell(pos),
            None => Cell::of_value(
                &self.rel.as_slice()[self.order[pos] as usize].values()[self.perm[d]],
            ),
        }
    }
}

/// Emit every row of the trie as a head tuple reading the cells at
/// `depths` (trie-order column indexes, repeats allowed), skipping rows
/// whose projected cells equal the previous row's. The trie leads with
/// the head columns, so equal projections are consecutive and the
/// output is a sorted, duplicate-free run — the caller's bulk
/// [`Relation::from_tuples`] build verifies rather than re-sorts, and no
/// duplicate tuple is ever boxed. Used by the fused rule kernel in
/// [`crate::eval`] for single-atom (projection) rule bodies.
pub fn project_emit(s: &SortedRel, depths: &[usize], out: &mut Vec<Tuple>) {
    for i in 0..s.len() {
        if i > 0
            && depths
                .iter()
                .all(|&d| s.cell(i, d).cmp_cell(s.cell(i - 1, d)).is_eq())
        {
            continue;
        }
        let vals: Vec<Value> = depths.iter().map(|&d| s.cell(i, d).to_value()).collect();
        out.push(Tuple::from(vals));
    }
}

/// Fused binary merge join: both tries lead with the same `k` join
/// columns (arrange with [`SortedRel::permuted`]); the walk advances two
/// cursors comparing raw [`Cell`]s and collects the joining row pairs.
/// `plan[c] = (from_b, depth)` names the trie column feeding output
/// column `c`; `k == 0` degenerates to the cross product (one
/// all-matching group).
///
/// The pairs are then sorted and deduplicated *by their projected head
/// cells* — raw primitive comparisons over the typed columns — before
/// any tuple is built, so the expensive part of the downstream
/// [`Relation::from_tuples`] canonicalization (boxed-row comparisons,
/// duplicate allocations) happens here on column data instead. Values
/// are boxed once per distinct head row at emission; no intermediate
/// environments or row clones exist. This is the fused rule kernel's
/// join path (see [`crate::eval`]).
pub fn merge_join_emit(
    a: &SortedRel,
    b: &SortedRel,
    k: usize,
    plan: &[(bool, usize)],
    out: &mut Vec<Tuple>,
) {
    use std::cmp::Ordering;
    let (na, nb) = (a.len(), b.len());
    let (mut i, mut j) = (0usize, 0usize);
    let mut pairs: Vec<(u32, u32)> = Vec::new();
    while i < na && j < nb {
        let mut ord = Ordering::Equal;
        for d in 0..k {
            ord = a.cell(i, d).cmp_cell(b.cell(j, d));
            if ord.is_ne() {
                break;
            }
        }
        match ord {
            Ordering::Less => i += 1,
            Ordering::Greater => j += 1,
            Ordering::Equal => {
                let ia = group_end(a, i, k);
                let jb = group_end(b, j, k);
                for pa in i..ia {
                    for pb in j..jb {
                        pairs.push((pa as u32, pb as u32));
                    }
                }
                i = ia;
                j = jb;
            }
        }
    }
    // Fast path for the overwhelmingly common graph shape — a binary
    // all-integer head: read the raw `i64` columns once per pair and
    // sort/dedup machine-word tuples, an order of magnitude cheaper than
    // dispatching cell comparisons per element.
    let int_col = |from_b: bool, d: usize| -> Option<&[i64]> {
        let cols = if from_b { b.cols.as_ref()? } else { a.cols.as_ref()? };
        match &cols[d] {
            Column::Int(v) => Some(v.as_slice()),
            _ => None,
        }
    };
    if let [(fb0, d0), (fb1, d1)] = *plan {
        if let (Some(c0), Some(c1)) = (int_col(fb0, d0), int_col(fb1, d1)) {
            let mut keys: Vec<(i64, i64)> = pairs
                .iter()
                .map(|&(pa, pb)| {
                    let r0 = if fb0 { pb } else { pa } as usize;
                    let r1 = if fb1 { pb } else { pa } as usize;
                    (c0[r0], c1[r1])
                })
                .collect();
            keys.sort_unstable();
            keys.dedup();
            out.reserve(keys.len());
            for (x, y) in keys {
                out.push(Tuple::from(vec![Value::int(x), Value::int(y)]));
            }
            return;
        }
    }
    let head_cmp = |&(pa1, pb1): &(u32, u32), &(pa2, pb2): &(u32, u32)| {
        plan.iter()
            .map(|&(from_b, d)| {
                let (c1, c2) = if from_b {
                    (b.cell(pb1 as usize, d), b.cell(pb2 as usize, d))
                } else {
                    (a.cell(pa1 as usize, d), a.cell(pa2 as usize, d))
                };
                c1.cmp_cell(c2)
            })
            .find(|o| o.is_ne())
            .unwrap_or(Ordering::Equal)
    };
    pairs.sort_unstable_by(head_cmp);
    for (n, &(pa, pb)) in pairs.iter().enumerate() {
        if n > 0 && head_cmp(&pairs[n - 1], &(pa, pb)).is_eq() {
            continue;
        }
        let vals: Vec<Value> = plan
            .iter()
            .map(|&(from_b, d)| {
                if from_b { b.cell(pb as usize, d) } else { a.cell(pa as usize, d) }.to_value()
            })
            .collect();
        out.push(Tuple::from(vals));
    }
}

/// End (exclusive) of the run of rows sharing `start`'s first `k` cells.
fn group_end(s: &SortedRel, start: usize, k: usize) -> usize {
    let n = s.len();
    let mut e = start + 1;
    while e < n && (0..k).all(|d| s.cell(e, d).cmp_cell(s.cell(start, d)).is_eq()) {
        e += 1;
    }
    e
}

/// A trie iterator over a [`SortedRel`]: a cursor at some depth, scoped to
/// the position range matching the current key prefix.
struct TrieIter<'a> {
    rel: &'a SortedRel,
    /// Stack of `(lo, hi)` ranges per open level; `ranges[d]` is the range
    /// of positions matching the prefix chosen at levels `< d`. Starts
    /// empty (at the virtual root): `open()` descends into level 0.
    ranges: Vec<(usize, usize)>,
    /// Current position within the top range (points at the current key's
    /// first row).
    pos: usize,
    at_end: bool,
}

impl<'a> TrieIter<'a> {
    fn new(rel: &'a SortedRel) -> Self {
        TrieIter { rel, ranges: Vec::new(), pos: 0, at_end: rel.is_empty() }
    }

    fn depth(&self) -> usize {
        self.ranges.len() - 1
    }

    /// The key cell at the current level (borrows the trie, not the
    /// cursor — cells from several iterators can be compared freely).
    fn key(&self) -> Cell<'a> {
        self.rel.cell(self.pos, self.depth())
    }

    /// The key at the current level as a boxed [`Value`].
    #[cfg(test)]
    fn key_value(&self) -> Value {
        self.key().to_value()
    }

    /// End of the keys at this level?
    fn at_end(&self) -> bool {
        self.at_end
    }

    /// Range end of positions sharing the current key (exclusive).
    fn key_end(&self) -> usize {
        let d = self.depth();
        let (_, hi) = self.ranges[d];
        let key = self.key();
        // Gallop to the end of the run of equal keys.
        let mut step = 1;
        let mut lo = self.pos;
        while lo + step < hi && self.rel.cell(lo + step, d).cmp_cell(key).is_eq() {
            lo += step;
            step *= 2;
        }
        let mut hi2 = (lo + step).min(hi);
        // Binary search in (lo, hi2].
        while lo + 1 < hi2 {
            let mid = lo + (hi2 - lo) / 2;
            if self.rel.cell(mid, d).cmp_cell(key).is_eq() {
                lo = mid;
            } else {
                hi2 = mid;
            }
        }
        lo + 1
    }

    /// Advance to the next distinct key at this level.
    fn next_key(&mut self) {
        let (_, hi) = self.ranges[self.depth()];
        let e = self.key_end();
        if e >= hi {
            self.at_end = true;
        } else {
            self.pos = e;
        }
    }

    /// Seek to the first key ≥ `target` at this level.
    fn seek(&mut self, target: Cell<'_>) {
        let d = self.depth();
        let (_, hi) = self.ranges[d];
        if self.at_end {
            return;
        }
        // Gallop forward.
        let mut lo = self.pos;
        let mut step = 1;
        while lo + step < hi && self.rel.cell(lo + step, d).cmp_cell(target).is_lt() {
            lo += step;
            step *= 2;
        }
        let mut hi2 = (lo + step).min(hi);
        while lo < hi2 {
            let mid = lo + (hi2 - lo) / 2;
            if self.rel.cell(mid, d).cmp_cell(target).is_lt() {
                lo = mid + 1;
            } else {
                hi2 = mid;
            }
        }
        if lo >= hi {
            self.at_end = true;
        } else {
            self.pos = lo;
        }
    }

    /// Descend one level: from the virtual root into level 0, or into the
    /// sub-trie of the current key.
    fn open(&mut self) {
        if self.ranges.is_empty() {
            self.ranges.push((0, self.rel.len()));
            self.pos = 0;
            self.at_end = self.rel.is_empty();
        } else {
            let end = self.key_end();
            self.ranges.push((self.pos, end));
            self.at_end = false;
            // pos stays: first row of the range is the first child key.
        }
    }

    /// Return to the parent level.
    fn up(&mut self) {
        let (lo, _) = self.ranges.pop().expect("up below root");
        self.pos = lo;
        self.at_end = false;
    }
}

/// One atom of a join query: a relation plus, per trie level, the global
/// join-variable index that level binds. Levels must be strictly
/// increasing in the global variable order (permute the relation with
/// [`SortedRel::permuted`] to arrange this). The atom is two borrows —
/// `Copy` — so a caller joining one atom set against many environments
/// can stamp out per-environment atom lists without cloning variable
/// vectors.
#[derive(Clone, Copy)]
pub struct JoinAtom<'a> {
    /// The (column-permuted) relation.
    pub rel: &'a SortedRel,
    /// `vars[d]` = global variable bound by trie level `d`.
    pub vars: &'a [usize],
}

/// Run a leapfrog triejoin over `atoms` with `nvars` join variables
/// (numbered `0..nvars` in join order). `emit` receives each result
/// binding. The join itself copies no tuples: iterators are range
/// cursors over the (shared, possibly cached) sorted storage, keys are
/// compared as raw [`Cell`]s, and a key is boxed into a [`Value`] only
/// when it joins the result binding.
pub fn leapfrog_join(atoms: &mut [JoinAtom<'_>], nvars: usize, emit: &mut dyn FnMut(&[Value])) {
    for atom in atoms.iter() {
        if atom.rel.is_empty() {
            return;
        }
        assert_eq!(atom.vars.len(), atom.rel.arity(), "vars must cover all columns");
        assert!(
            atom.vars.windows(2).all(|w| w[0] < w[1]),
            "atom variables must be strictly increasing in join order"
        );
    }
    let mut iters: Vec<TrieIter<'_>> = atoms.iter().map(|a| TrieIter::new(a.rel)).collect();
    let mut binding: Vec<Value> = Vec::with_capacity(nvars);
    join_level(atoms, &mut iters, 0, nvars, &mut binding, emit);
}

/// Which iterators participate at variable `v`, by atom index.
fn participants(atoms: &[JoinAtom<'_>], v: usize) -> Vec<usize> {
    atoms
        .iter()
        .enumerate()
        .filter(|(_, a)| a.vars.contains(&v))
        .map(|(i, _)| i)
        .collect()
}

fn join_level(
    atoms: &[JoinAtom<'_>],
    iters: &mut [TrieIter<'_>],
    var: usize,
    nvars: usize,
    binding: &mut Vec<Value>,
    emit: &mut dyn FnMut(&[Value]),
) {
    if var == nvars {
        emit(binding);
        return;
    }
    let ps = participants(atoms, var);
    debug_assert!(!ps.is_empty(), "every variable needs at least one atom");
    // Enter this level: every participant descends one trie level (from
    // the virtual root for its first variable, from its current key
    // otherwise).
    for &i in &ps {
        iters[i].open();
    }
    loop {
        // Leapfrog search: find a common key or exhaust. Keys are `Copy`
        // cell views borrowing the tries, so the max is found and seeked
        // to without boxing a `Value`.
        if ps.iter().any(|&i| iters[i].at_end()) {
            break;
        }
        let mut max = iters[ps[0]].key();
        for &i in &ps[1..] {
            let k = iters[i].key();
            if k.cmp_cell(max).is_gt() {
                max = k;
            }
        }
        let mut all_equal = true;
        for &i in &ps {
            if iters[i].key().cmp_cell(max).is_ne() {
                iters[i].seek(max);
                all_equal = false;
            }
        }
        if ps.iter().any(|&i| iters[i].at_end()) {
            break;
        }
        if !all_equal {
            continue;
        }
        // Match on `max`: descend to the next join variable.
        binding.push(max.to_value());
        join_level(atoms, iters, var + 1, nvars, binding, emit);
        binding.pop();
        // Advance one participant to continue the search.
        let first = ps[0];
        iters[first].next_key();
        if iters[first].at_end() {
            break;
        }
    }
    // Leave this level.
    for &i in &ps {
        iters[i].up();
    }
}

/// Count triangles `E(a,b) ∧ E(b,c) ∧ E(a,c)` with leapfrog triejoin.
pub fn triangle_count_lftj(edges: &Relation) -> usize {
    let r_ab = SortedRel::from_relation(edges); // (a, b)
    let r_bc = SortedRel::from_relation(edges); // (b, c)
    let r_ac = SortedRel::from_relation(edges); // (a, c)
    let mut atoms = [
        JoinAtom { rel: &r_ab, vars: &[0, 1] },
        JoinAtom { rel: &r_bc, vars: &[1, 2] },
        JoinAtom { rel: &r_ac, vars: &[0, 2] },
    ];
    let mut count = 0usize;
    leapfrog_join(&mut atoms, 3, &mut |_| count += 1);
    count
}

/// Count triangles with a binary hash-join plan: `(E ⋈ E) ⋈ E` — the
/// baseline whose intermediate result can be Θ(|E|²).
pub fn triangle_count_hash(edges: &Relation) -> usize {
    use std::collections::{HashMap, HashSet};
    let mut by_src: HashMap<&Value, Vec<&Value>> = HashMap::new();
    let mut edge_set: HashSet<(&Value, &Value)> = HashSet::new();
    for t in edges.iter() {
        let (a, b) = (&t.values()[0], &t.values()[1]);
        by_src.entry(a).or_default().push(b);
        edge_set.insert((a, b));
    }
    let mut count = 0usize;
    // First join: E(a,b) ⋈ E(b,c) materializes all paths of length 2.
    for t in edges.iter() {
        let (a, b) = (&t.values()[0], &t.values()[1]);
        if let Some(cs) = by_src.get(b) {
            for c in cs {
                // Second join: probe E(a,c).
                if edge_set.contains(&(a, *c)) {
                    count += 1;
                }
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use rel_core::tuple;

    fn edges(pairs: &[(i64, i64)]) -> Relation {
        Relation::from_tuples(pairs.iter().map(|&(a, b)| tuple![a, b]))
    }

    #[test]
    fn trie_iter_walk() {
        let rel = SortedRel::new(vec![tuple![1, 2], tuple![1, 3], tuple![2, 5]]);
        let mut it = TrieIter::new(&rel);
        it.open(); // virtual root → level 0
        assert_eq!(it.key_value(), Value::int(1));
        it.open();
        assert_eq!(it.key_value(), Value::int(2));
        it.next_key();
        assert_eq!(it.key_value(), Value::int(3));
        it.next_key();
        assert!(it.at_end());
        it.up();
        it.next_key();
        assert_eq!(it.key_value(), Value::int(2));
        it.open();
        assert_eq!(it.key_value(), Value::int(5));
    }

    #[test]
    fn seek_gallops() {
        let rel = SortedRel::new((0..100).step_by(3).map(|i| tuple![i]).collect());
        let mut it = TrieIter::new(&rel);
        it.open();
        it.seek(Cell::of_value(&Value::int(50)));
        assert_eq!(it.key_value(), Value::int(51));
        it.seek(Cell::of_value(&Value::int(99)));
        assert_eq!(it.key_value(), Value::int(99));
        it.seek(Cell::of_value(&Value::int(100)));
        assert!(it.at_end());
    }

    #[test]
    fn triangle_simple() {
        // 1→2→3→1 plus 1→3 gives exactly one directed triangle 1,2,3.
        let e = edges(&[(1, 2), (2, 3), (1, 3)]);
        assert_eq!(triangle_count_lftj(&e), 1);
        assert_eq!(triangle_count_hash(&e), 1);
    }

    #[test]
    fn no_triangles() {
        let e = edges(&[(1, 2), (2, 3), (3, 4)]);
        assert_eq!(triangle_count_lftj(&e), 0);
        assert_eq!(triangle_count_hash(&e), 0);
    }

    #[test]
    fn lftj_matches_hash_on_random_graphs() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            let n = 30i64;
            let pairs: Vec<(i64, i64)> = (0..200)
                .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
                .filter(|(a, b)| a != b)
                .collect();
            let e = edges(&pairs);
            assert_eq!(triangle_count_lftj(&e), triangle_count_hash(&e));
        }
    }

    #[test]
    fn two_way_join_is_intersection() {
        let a = SortedRel::new(vec![tuple![1], tuple![2], tuple![3]]);
        let b = SortedRel::new(vec![tuple![2], tuple![3], tuple![4]]);
        let mut atoms = [
            JoinAtom { rel: &a, vars: &[0] },
            JoinAtom { rel: &b, vars: &[0] },
        ];
        let mut out = Vec::new();
        leapfrog_join(&mut atoms, 1, &mut |vals| out.push(vals[0].clone()));
        assert_eq!(out, vec![Value::int(2), Value::int(3)]);
    }

    #[test]
    fn permuted_skips_foreign_arities() {
        // A relation holding 1-, 2- and 3-tuples, viewed as a binary atom
        // with swapped columns: only the 2-tuples survive, permuted.
        let mut rel = Relation::new();
        rel.insert(tuple![7]);
        rel.insert(tuple![1, 2]);
        rel.insert(tuple![3, 4]);
        rel.insert(tuple![5, 6, 7]);
        let s = SortedRel::permuted(&rel, &[1, 0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.arity(), 2);
        assert!(!s.is_columnar(), "mixed-arity source stays on the row path");
        let mut atoms = [JoinAtom { rel: &s, vars: &[0, 1] }];
        let mut out = Vec::new();
        leapfrog_join(&mut atoms, 2, &mut |vals| out.push((vals[0].clone(), vals[1].clone())));
        assert_eq!(
            out,
            vec![
                (Value::int(2), Value::int(1)),
                (Value::int(4), Value::int(3)),
            ]
        );
    }

    #[test]
    fn empty_relation_short_circuits_before_arity_check() {
        // An empty SortedRel reports arity 0; the join must bail out on
        // emptiness instead of tripping the vars-cover-columns assertion.
        let empty = SortedRel::new(Vec::new());
        let full = SortedRel::new(vec![tuple![1, 2]]);
        let mut atoms = [
            JoinAtom { rel: &full, vars: &[0, 1] },
            JoinAtom { rel: &empty, vars: &[0, 1] },
        ];
        let mut emitted = 0;
        leapfrog_join(&mut atoms, 2, &mut |_| emitted += 1);
        assert_eq!(emitted, 0);
    }

    #[test]
    fn columnar_and_row_tries_join_identically() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        use rel_core::columnar::{columnar_enabled, set_columnar_enabled};
        let mut rng = StdRng::seed_from_u64(11);
        let pairs: Vec<(i64, i64)> = (0..300)
            .map(|_| (rng.gen_range(0..40), rng.gen_range(0..40)))
            .filter(|(a, b)| a != b)
            .collect();
        let e = edges(&pairs);
        let prev = columnar_enabled();
        set_columnar_enabled(true);
        let on = triangle_count_lftj(&e);
        set_columnar_enabled(false);
        let off = triangle_count_lftj(&e);
        set_columnar_enabled(prev);
        assert_eq!(on, off);
        assert_eq!(on, triangle_count_hash(&e));
    }

    #[test]
    fn permuted_trie_over_string_columns() {
        // Dictionary codes must seek/join exactly like the strings.
        let rel = Relation::from_tuples([
            tuple!["b", "x"],
            tuple!["a", "y"],
            tuple!["c", "x"],
            tuple!["a", "x"],
        ]);
        let s = SortedRel::permuted(&rel, &[1, 0]); // (x-col, name-col)
        let mut atoms = [JoinAtom { rel: &s, vars: &[0, 1] }];
        let mut out = Vec::new();
        leapfrog_join(&mut atoms, 2, &mut |vals| {
            out.push((vals[0].clone(), vals[1].clone()))
        });
        assert_eq!(
            out,
            vec![
                (Value::str("x"), Value::str("a")),
                (Value::str("x"), Value::str("b")),
                (Value::str("x"), Value::str("c")),
                (Value::str("y"), Value::str("a")),
            ]
        );
    }
}
