//! Sessions and transactions (§3.4–3.5 of the paper).
//!
//! A [`Session`] owns a [`Database`] plus installed library source (the
//! standard library and any user libraries). Executing a query is a
//! *transaction*: the program (library + query) is compiled and
//! materialized; the control relations `output`, `insert` and `delete`
//! steer the result; integrity constraints are checked against the
//! post-state and abort the transaction when violated.
//!
//! Compilation is cached (client API v2): the library prefix is parsed
//! once per revision, and every compiled `library + query` module is
//! memoized by source in the session's module cache — re-running a query
//! string, or executing a [`Prepared`] handle any number of times, never
//! recompiles. See [`crate::prepared`] and [`crate::txn`] for the
//! prepared-query and explicit-transaction halves of the API.

use crate::env::Env;
use crate::eval::{EvalCtx, SharedIndexCache};
use crate::fixpoint::materialize_with_cache;
use crate::prepared::Prepared;
use crate::txn::Transaction;
use rel_core::database::Delta;
use rel_core::{Database, Name, RelError, RelResult, Relation, Tuple, Value};
use rel_sema::ir::{ConstraintIr, Module, Rule};
use rel_syntax::Program;
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, OnceLock, RwLock};

/// Compiled modules cached per session, keyed by query source. Bounded so
/// a server feeding unbounded ad-hoc query strings through one session
/// cannot grow the cache without limit.
const MODULE_CACHE_CAP: usize = 512;

type ModuleCache = HashMap<String, Arc<Module>>;

/// Result of a committed transaction.
#[derive(Clone, Debug, Default)]
pub struct TxnOutcome {
    /// Contents of the `output` control relation.
    pub output: Relation,
    /// Number of tuples inserted into base relations.
    pub inserted: usize,
    /// Number of tuples deleted from base relations.
    pub deleted: usize,
}

/// An interactive session: a database plus library code.
///
/// The session also owns a [`SharedIndexCache`]: hash indexes built while
/// evaluating one query are keyed by relation generation, so they are
/// reused verbatim by later queries/transactions over the unchanged base
/// relations, and invalidated per relation as transactions commit.
///
/// # Threading model
///
/// `Session` is `Send + Sync` (asserted at compile time in this module's
/// tests): the CoW `Relation` storage is `Arc`-shared, the index cache is
/// `Arc<RwLock<…>>`, and the evaluator's interior state sits behind
/// locks. One session can therefore serve read-only [`Session::query`] /
/// [`Session::eval`] calls from many threads concurrently — each call
/// snapshots the database with O(1) CoW clones, and concurrent callers
/// share lazily built hash indexes through the generation-keyed cache.
/// Mutation ([`Session::transact`], [`Session::db_mut`]) takes `&mut
/// self`, so Rust's borrow rules serialize writers; wrap the session in
/// your own `RwLock` for a mixed read/write multi-threaded server.
/// Internally, every materialize run additionally fans independent
/// strata out across worker threads (see [`crate::fixpoint`]).
#[derive(Clone, Debug, Default)]
pub struct Session {
    pub(crate) db: Database,
    library: String,
    pub(crate) index_cache: SharedIndexCache,
    /// The installed library source, parsed once and kept warm: compiling
    /// a query re-parses only the query's own text, then runs semantic
    /// analysis over the merged program.
    library_ast: OnceLock<Arc<Program>>,
    /// Compiled modules keyed by query source, valid for the *current*
    /// library revision. Shared across clones of the session;
    /// [`Session::install_library`] swaps in a fresh cache (rather than
    /// clearing the shared one), so clones still on the old library keep
    /// their valid entries.
    module_cache: Arc<RwLock<ModuleCache>>,
}

impl Session {
    /// A session over a database, with no library installed.
    pub fn new(db: Database) -> Self {
        Session {
            db,
            library: String::new(),
            index_cache: SharedIndexCache::default(),
            library_ast: OnceLock::new(),
            module_cache: Arc::default(),
        }
    }

    /// Append library source (e.g. the standard library) that is compiled
    /// in front of every query. Invalidates this session's cached library
    /// parse and compiled modules (clones sharing the old cache keep
    /// theirs — they still compile against the old library).
    pub fn install_library(&mut self, src: &str) {
        self.library.push_str(src);
        self.library.push('\n');
        self.library_ast = OnceLock::new();
        self.module_cache = Arc::default();
    }

    /// Builder-style library installation.
    pub fn with_library(mut self, src: &str) -> Self {
        self.install_library(src);
        self
    }

    /// The current database.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// Mutable database access (e.g. for loading data).
    pub fn db_mut(&mut self) -> &mut Database {
        &mut self.db
    }

    /// The installed library, parsed (parsing happens at most once per
    /// library revision).
    fn library_program(&self) -> RelResult<Arc<Program>> {
        if let Some(p) = self.library_ast.get() {
            return Ok(Arc::clone(p));
        }
        let parsed = Arc::new(rel_syntax::parse_program(&self.library)?);
        // Two racing threads both parse; `get_or_init` keeps one.
        Ok(Arc::clone(self.library_ast.get_or_init(|| parsed)))
    }

    /// Compile a query against the installed library, through the
    /// session's module cache: the same source string is analyzed at most
    /// once per library revision (and the library prefix is *parsed* at
    /// most once per revision). The cache-hit path is allocation-free.
    /// The returned handle is shared — cloning it is free.
    pub fn compile(&self, src: &str) -> RelResult<Arc<Module>> {
        if let Some(m) = self
            .module_cache
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(src)
        {
            return Ok(Arc::clone(m));
        }
        let mut program = (*self.library_program()?).clone();
        program.extend(rel_syntax::parse_program(src)?);
        let module = Arc::new(rel_sema::analyze(&program)?);
        let mut cache = self
            .module_cache
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if cache.len() >= MODULE_CACHE_CAP {
            cache.clear();
        }
        cache.insert(src.to_string(), Arc::clone(&module));
        Ok(module)
    }

    /// Compile a query once into a [`Prepared`] handle that can be
    /// executed any number of times — against the session's *current*
    /// database snapshot each time, with `?name` parameters bound at
    /// execute time and **zero recompilation** (asserted by tests against
    /// the [`rel_sema::compilations`] counter):
    ///
    /// ```
    /// use rel_core::database::figure1_database;
    /// use rel_engine::{Params, Session};
    ///
    /// let s = Session::new(figure1_database());
    /// let q = s.prepare("def output(x) : ProductPrice(x, ?min)").unwrap();
    /// let cheap = q.execute_with(&s, &Params::new().set("min", 10)).unwrap();
    /// assert_eq!(cheap.rows::<String>().unwrap(), vec!["P1".to_string()]);
    /// ```
    pub fn prepare(&self, src: &str) -> RelResult<Prepared> {
        let module = self.compile(src)?;
        check_control_materializable(&module)?;
        Ok(Prepared::new(module, src.to_string()))
    }

    /// Run a read-only query: returns the `output` relation. Integrity
    /// constraints in scope are checked; `insert`/`delete` rules are
    /// evaluated but **not** applied. Equivalent to
    /// `self.prepare(src)?.execute(self)` minus the reusable handle.
    pub fn query(&self, src: &str) -> RelResult<Relation> {
        let module = self.compile(src)?;
        check_control_materializable(&module)?;
        require_no_params(&module)?;
        let rels = materialize_with_cache(&module, &self.db, self.index_cache.clone())?;
        check_constraints(&module, &rels)?;
        Ok(rels.get("output").cloned().unwrap_or_default())
    }

    /// Evaluate a query and return an arbitrary derived relation (useful
    /// for tests and tooling). Demand-driven relations cannot be fetched
    /// whole.
    pub fn eval(&self, src: &str, relation: &str) -> RelResult<Relation> {
        let module = self.compile(src)?;
        require_no_params(&module)?;
        let rels = materialize_with_cache(&module, &self.db, self.index_cache.clone())?;
        Ok(rels.get(relation).cloned().unwrap_or_default())
    }

    /// Open an explicit transaction over an O(1) copy-on-write snapshot
    /// of the current database. Staged steps ([`Transaction::run`],
    /// [`Transaction::run_prepared`], [`Transaction::stage_insert`],
    /// [`Transaction::stage_delete`]) see each other's effects; integrity
    /// constraints are checked on [`Transaction::commit`], and
    /// [`Transaction::abort`] (or a plain drop) discards everything at
    /// zero cost.
    pub fn begin(&mut self) -> Transaction<'_> {
        Transaction::begin(self)
    }

    /// Execute a one-shot transaction: evaluate, build the delta from the
    /// `insert` and `delete` control relations, check integrity
    /// constraints against the post-state, and commit (or abort, leaving
    /// the database untouched). A thin wrapper over
    /// [`Session::begin`] → [`Transaction::run`] → [`Transaction::commit`].
    pub fn transact(&mut self, src: &str) -> RelResult<TxnOutcome> {
        let mut txn = self.begin();
        txn.run(src)?;
        txn.commit()
    }
}

/// A module whose `?name` parameters are unbound can only run through the
/// prepared-query API, which supplies the reserved relations.
pub(crate) fn require_no_params(module: &Module) -> RelResult<()> {
    if let Some(p) = module.params.first() {
        return Err(RelError::unsafe_expr(format!(
            "query references parameter `?{p}`: prepare it and bind values \
             via `Prepared::execute_with`"
        )));
    }
    Ok(())
}

/// Control relations must be fully materializable: a demand-driven
/// `output` would silently evaluate to nothing.
pub(crate) fn check_control_materializable(module: &Module) -> RelResult<()> {
    for control in ["output", "insert", "delete"] {
        if let Some(info) = module.pred_info.get(control) {
            if let rel_sema::ir::EvalMode::Demand { bound_prefix } = info.mode {
                return Err(RelError::unsafe_expr(format!(
                    "`{control}` is not materializable: its first {bound_prefix} \
                     argument(s) would need to be bound externally — some rule \
                     cannot ground them"
                )));
            }
        }
    }
    Ok(())
}

/// Build a [`Delta`] from the `insert`/`delete` control relations: each
/// tuple is `⟨:RelName, v₁, …, vₙ⟩` (§3.4).
pub(crate) fn extract_delta(rels: &BTreeMap<Name, Relation>) -> RelResult<Delta> {
    let mut delta = Delta::default();
    for (control, is_insert) in [("insert", true), ("delete", false)] {
        let Some(rel) = rels.get(control) else { continue };
        for t in rel.iter() {
            let Some(Value::Symbol(target)) = t.get(0) else {
                return Err(RelError::type_err(format!(
                    "`{control}` tuples must start with a :RelationName symbol, got {t}"
                )));
            };
            let rest = Tuple::from(t.values()[1..].to_vec());
            if is_insert {
                delta.insert(target.as_ref(), rest);
            } else {
                delta.delete(target.as_ref(), rest);
            }
        }
    }
    Ok(delta)
}

/// Evaluate every integrity constraint's violation query; the first
/// non-empty one aborts.
pub fn check_constraints(module: &Module, rels: &BTreeMap<Name, Relation>) -> RelResult<()> {
    let cx = EvalCtx::new(module, rels);
    for c in &module.constraints {
        let witnesses = eval_constraint(&cx, c)?;
        if !witnesses.is_empty() {
            let rendered: Vec<String> =
                witnesses.iter().take(5).map(|t| t.to_string()).collect();
            return Err(RelError::ConstraintViolation {
                name: c.name.to_string(),
                witnesses: format!("{{{}}}", rendered.join("; ")),
            });
        }
    }
    Ok(())
}

/// Evaluate one constraint's violation query as a synthetic rule.
pub fn eval_constraint(cx: &EvalCtx<'_>, c: &ConstraintIr) -> RelResult<Relation> {
    let rule = Rule {
        pred: c.name.clone(),
        params: c.params.clone(),
        body: c.body.clone(),
        vars: c.vars.clone(),
    };
    cx.eval_rule(&rule, Env::new(rule.vars.len()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rel_core::database::figure1_database;
    use rel_core::tuple;

    fn session() -> Session {
        Session::new(figure1_database())
    }

    #[test]
    fn basic_query_output() {
        // §3.4: products whose price exceeds 30.
        let out = session()
            .query("def output(x) : exists( (y) | ProductPrice(x,y) and y > 30)")
            .unwrap();
        assert_eq!(out, Relation::from_tuples([tuple!["P4"]]));
    }

    #[test]
    fn order_with_payment() {
        // §3.1 — set semantics: "O1" appears once despite two payments.
        let out = session()
            .query("def output(y) : exists((x) | PaymentOrder(x,y))")
            .unwrap();
        assert_eq!(
            out,
            Relation::from_tuples([tuple!["O1"], tuple!["O2"], tuple!["O3"]])
        );
    }

    #[test]
    fn transact_insert_creates_relation() {
        let mut s = session();
        let outcome = s
            .transact("def insert(:ClosedOrders, x) : PaymentOrder(_, x)")
            .unwrap();
        assert_eq!(outcome.inserted, 3);
        assert_eq!(s.db().get("ClosedOrders").unwrap().len(), 3);
    }

    #[test]
    fn transact_delete() {
        let mut s = session();
        let outcome = s
            .transact("def delete(:ProductPrice, x, y) : ProductPrice(x, y) and y > 30")
            .unwrap();
        assert_eq!(outcome.deleted, 1);
        assert_eq!(s.db().get("ProductPrice").unwrap().len(), 3);
    }

    #[test]
    fn violated_constraint_aborts() {
        let mut s = session();
        let err = s
            .transact(
                "def insert(:OrderProductQuantity, x, y, z) : \
                   x = \"O9\" and y = \"P9\" and z = 1\n\
                 ic valid_products(p) requires \
                   OrderProductQuantity(_,p,_) implies ProductPrice(p,_)",
            )
            .unwrap_err();
        assert!(matches!(err, RelError::ConstraintViolation { .. }), "{err}");
        // Aborted: database unchanged.
        assert_eq!(s.db().get("OrderProductQuantity").unwrap().len(), 4);
    }

    #[test]
    fn satisfied_constraint_commits() {
        let mut s = session();
        s.transact(
            "def insert(:OrderProductQuantity, x, y, z) : \
               x = \"O9\" and y = \"P1\" and z = 1\n\
             ic valid_products(p) requires \
               OrderProductQuantity(_,p,_) implies ProductPrice(p,_)",
        )
        .unwrap();
        assert_eq!(s.db().get("OrderProductQuantity").unwrap().len(), 5);
    }

    #[test]
    fn boolean_constraint_checked() {
        let s = session();
        let err = s
            .query(
                "def output(x) : ProductPrice(x, _)\n\
                 ic impossible() requires ProductPrice(\"P1\", 11)",
            )
            .unwrap_err();
        assert!(matches!(err, RelError::ConstraintViolation { .. }), "{err}");
    }

    #[test]
    fn control_materializable_message_is_single_spaced() {
        // A demand-driven `output` (its argument can't be grounded
        // bottom-up) must be rejected with a readable message: exactly the
        // text below, no embedded runs of whitespace from the source
        // literal's line continuation.
        let err = session()
            .query("def output(x) : x > 3")
            .unwrap_err();
        assert_eq!(
            err.to_string(),
            "safety error: `output` is not materializable: its first 1 \
             argument(s) would need to be bound externally — some rule \
             cannot ground them"
        );
        assert!(!err.to_string().contains("  "), "double space in: {err}");
    }

    #[test]
    fn compile_is_cached_per_source() {
        // Cache hits are proven by pointer identity — a recompile could
        // never hand back the same allocation. (Exact compilation-counter
        // deltas are asserted in the isolated `prepared_compile_once`
        // integration binary; the counter is process-global, so sibling
        // tests in this binary would race an exact assertion here.)
        let s = session();
        let m1 = s.compile("def output(x) : ProductPrice(x, _)").unwrap();
        let m2 = s.compile("def output(x) : ProductPrice(x, _)").unwrap();
        assert!(Arc::ptr_eq(&m1, &m2), "same source must be served from the cache");
        // Different source: a different module.
        let m3 = s.compile("def output(x) : PaymentOrder(x, _)").unwrap();
        assert!(!Arc::ptr_eq(&m1, &m3));
        // A clone shares the cache.
        let c = s.clone();
        let m4 = c.compile("def output(x) : ProductPrice(x, _)").unwrap();
        assert!(Arc::ptr_eq(&m1, &m4));
    }

    #[test]
    fn install_library_invalidates_cached_parse() {
        let mut s = session();
        s.query("def output(x) : ProductPrice(x, _)").unwrap();
        s.install_library("def Cheap(x) : ProductPrice(x, 10)\n");
        let out = s.query("def output(x) : Cheap(x)").unwrap();
        assert_eq!(out, Relation::from_tuples([tuple!["P1"]]));
    }

    #[test]
    fn session_is_send_and_sync() {
        // Compile-time assertion: the evaluation core's interior state is
        // lock-based, so a session can be shared across threads.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Session>();
        assert_send_sync::<SharedIndexCache>();
        assert_send_sync::<EvalCtx<'static>>();
    }

    #[test]
    fn concurrent_queries_share_one_session() {
        // One session, many threads: every thread sees the same answer a
        // single-threaded query produces, and the shared index cache
        // survives the contention.
        let s = session();
        let expected = s
            .query("def output(x) : exists( (y) | ProductPrice(x,y) and y > 30)")
            .unwrap();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let s = &s;
                    scope.spawn(move || {
                        s.query(
                            "def output(x) : exists( (y) | ProductPrice(x,y) and y > 30)",
                        )
                        .unwrap()
                    })
                })
                .collect();
            for h in handles {
                assert_eq!(h.join().unwrap(), expected);
            }
        });
    }

    #[test]
    fn commit_invalidates_indexes_of_touched_relations() {
        let mut s = session();
        // Build an index over ProductPrice (the join binds x, indexing on
        // the bound position) and record the pre-commit generation.
        s.query("def output(y) : ProductPrice(\"P1\", y)").unwrap();
        let old_gen = s.db().get("ProductPrice").unwrap().generation();
        let pre = s.index_cache.generations_for("ProductPrice");
        assert!(
            pre.contains(&old_gen),
            "expected an index built against the pre-commit generation, got {pre:?}"
        );
        // Commit a transaction that touches ProductPrice. The module here
        // never *reads* ProductPrice through an index, so without
        // per-relation invalidation the old entry would linger.
        s.transact("def insert(:ProductPrice, x, y) : x = \"P9\" and y = 99")
            .unwrap();
        let post = s.index_cache.generations_for("ProductPrice");
        assert!(
            !post.contains(&old_gen),
            "a committed transaction must not retain an index built against \
             the pre-commit generation (left: {post:?})"
        );
        // And the next query sees the committed tuple.
        let out = s
            .query("def output(x) : exists( (y) | ProductPrice(x,y) and y > 30)")
            .unwrap();
        assert_eq!(out, Relation::from_tuples([tuple!["P4"], tuple!["P9"]]));
    }

    #[test]
    fn integer_quantities_ic_holds() {
        // §3.5 with the Figure 1 data: all quantities are integers.
        let s = session();
        s.query(
            "def output(x) : ProductPrice(x, _)\n\
             ic integer_quantities() requires \
               forall((x) | OrderProductQuantity(_,_,x) implies Int(x))",
        )
        .unwrap();
    }
}
