//! Sessions and transactions (§3.4–3.5 of the paper).
//!
//! A [`Session`] owns a [`Database`] plus installed library source (the
//! standard library and any user libraries). Executing a query is a
//! *transaction*: the program (library + query) is compiled and
//! materialized; the control relations `output`, `insert` and `delete`
//! steer the result; integrity constraints are checked against the
//! post-state and abort the transaction when violated.
//!
//! Compilation is cached (client API v2): the library prefix is parsed
//! once per revision, and every compiled `library + query` module is
//! memoized by source in the session's module cache — re-running a query
//! string, or executing a [`Prepared`] handle any number of times, never
//! recompiles. See [`crate::prepared`] and [`crate::txn`] for the
//! prepared-query and explicit-transaction halves of the API.

use crate::config::EngineConfig;
use crate::durability::{self, DurabilityConfig, DurableStore};
use crate::env::Env;
use crate::eval::{EvalCtx, SharedIndexCache};
use crate::fixpoint::materialize_with_cache;
use crate::incremental::{self, PreState};
use crate::lru::LruMap;
use crate::metrics;
use crate::prepared::{Params, Prepared};
use crate::profile::{FixpointOutcome, ProfileSink, QueryProfile};
use crate::recovery;
use crate::txn::Transaction;
use crate::watch::{self, Watch, WatchRegistry};
use rel_core::database::Delta;
use rel_core::{Database, Name, RelError, RelResult, Relation, Tuple, Value};
use rel_sema::ir::{ConstraintIr, Module, Rule};
use rel_syntax::Program;
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError, RwLock};

/// Compiled modules cached per session, keyed by query source. Bounded so
/// a server feeding unbounded ad-hoc query strings through one session
/// cannot grow the cache without limit; at capacity the *least recently
/// used* entry is evicted (hot query shapes stay compiled).
const MODULE_CACHE_CAP: usize = 512;

/// Captured fixpoints cached per session for incremental re-evaluation,
/// keyed by compiled-module identity. Each entry holds CoW handles into
/// (mostly) the live database, so the bound is about map bookkeeping, not
/// tuple storage.
const FIXPOINT_CACHE_CAP: usize = 32;

type ModuleCache = LruMap<String, Arc<Module>>;

/// Key: the module's `Arc` address. The entry keeps the `Arc` alive, so
/// the address cannot be recycled by a different allocation while the
/// entry exists; the stored handle is still pointer-compared on lookup,
/// making a stale hit impossible by construction.
type FixpointCache = LruMap<usize, (Arc<Module>, Arc<PreState>)>;

/// Result of a committed transaction.
#[derive(Clone, Debug, Default)]
pub struct TxnOutcome {
    /// Contents of the `output` control relation.
    pub output: Relation,
    /// Number of tuples inserted into base relations.
    pub inserted: usize,
    /// Number of tuples deleted from base relations.
    pub deleted: usize,
}

/// An interactive session: a database plus library code.
///
/// The session also owns a [`SharedIndexCache`]: hash indexes built while
/// evaluating one query are keyed by relation generation, so they are
/// reused verbatim by later queries/transactions over the unchanged base
/// relations, and invalidated per relation as transactions commit.
///
/// # Threading model
///
/// `Session` is `Send + Sync` (asserted at compile time in this module's
/// tests): the CoW `Relation` storage is `Arc`-shared, the index cache is
/// `Arc<RwLock<…>>`, and the evaluator's interior state sits behind
/// locks. One session can therefore serve read-only [`Session::query`] /
/// [`Session::eval`] calls from many threads concurrently — each call
/// snapshots the database with O(1) CoW clones, and concurrent callers
/// share lazily built hash indexes through the generation-keyed cache.
/// Mutation ([`Session::transact`], [`Session::db_mut`]) takes `&mut
/// self`, so Rust's borrow rules serialize writers; wrap the session in
/// your own `RwLock` for a mixed read/write multi-threaded server.
/// Internally, every materialize run additionally fans independent
/// strata out across worker threads (see [`crate::fixpoint`]).
///
/// # Durability
///
/// [`Session::open`] backs the session with a durable store directory:
/// committed transactions append their net base-relation delta to a
/// CRC-framed write-ahead log, a compaction policy folds the log into
/// snapshots, and reopening the directory recovers exactly the committed
/// history (see [`crate::wal`], [`crate::snapshot`],
/// [`crate::recovery`]). [`Session::new`] sessions — and *clones* of any
/// session — are ephemeral. The `REL_DURABILITY` / `REL_FSYNC` switches
/// are listed in the crate-level
/// [environment-variable table](crate#environment-variables).
#[derive(Debug)]
pub struct Session {
    pub(crate) db: Database,
    library: String,
    pub(crate) index_cache: SharedIndexCache,
    /// The installed library source, parsed once and kept warm: compiling
    /// a query re-parses only the query's own text, then runs semantic
    /// analysis over the merged program.
    library_ast: OnceLock<Arc<Program>>,
    /// Compiled modules keyed by query source, valid for the *current*
    /// library revision, with LRU eviction at capacity. Shared across
    /// clones of the session; [`Session::install_library`] swaps in a
    /// fresh cache (rather than clearing the shared one), so clones still
    /// on the old library keep their valid entries.
    module_cache: Arc<RwLock<ModuleCache>>,
    /// Captured fixpoints per compiled module, driving the incremental
    /// evaluation mode (see [`crate::incremental`]): a later evaluation of
    /// the same module re-derives only the dependent cone of the base
    /// relations whose generations moved. Safe to share across session
    /// clones and surviving aborted transactions, because entries are
    /// validated structurally against the database they are applied to —
    /// never trusted.
    fixpoint_cache: Arc<RwLock<FixpointCache>>,
    /// Whether evaluation may reuse captured fixpoints incrementally.
    /// Defaults to the `REL_INCREMENTAL` environment variable (on unless
    /// set to `0`/`false`/`off`/`no`); [`Session::set_incremental`]
    /// overrides per session.
    incremental: bool,
    /// The durable store backing this session, if it was opened with
    /// [`Session::open`]. Behind a `Mutex` only so read-handle methods
    /// like [`Session::sync`] can take `&self`; commits already hold the
    /// session exclusively.
    durability: Option<Mutex<DurableStore>>,
    /// While set, [`Session::log_commit`] appends WAL records *without*
    /// applying the fsync policy; [`Session::end_commit_group`] closes
    /// the window with one sync covering every commit inside it. Atomic
    /// only because `log_commit` takes `&self`; the begin/end methods
    /// take `&mut self`, so a window is always owned by a single writer.
    group_commit: AtomicBool,
    /// Standing queries registered on this session ([`Session::watch`],
    /// fed by every [`Transaction::commit`]). **Not** shared with clones:
    /// a clone's database diverges immediately, and a watch must only
    /// ever receive deltas from the database it was registered against.
    watches: WatchRegistry,
    /// Delivery-buffer bound, in batches, for watches registered through
    /// this session; defaults to `REL_WATCH_BUFFER`
    /// ([`Session::set_watch_buffer`] overrides).
    watch_buffer: usize,
}

impl Default for Session {
    fn default() -> Self {
        Session::new(Database::new())
    }
}

impl Clone for Session {
    /// Clones are **ephemeral read replicas**: they share the caches and
    /// see the database as of the clone, but never the durable store —
    /// two writers interleaving appends in one WAL would corrupt its
    /// commit sequence. Commits made through a clone stay in memory.
    fn clone(&self) -> Self {
        Session {
            db: self.db.clone(),
            library: self.library.clone(),
            index_cache: self.index_cache.clone(),
            library_ast: self.library_ast.clone(),
            module_cache: Arc::clone(&self.module_cache),
            fixpoint_cache: Arc::clone(&self.fixpoint_cache),
            incremental: self.incremental,
            durability: None,
            group_commit: AtomicBool::new(false),
            watches: WatchRegistry::default(),
            watch_buffer: self.watch_buffer,
        }
    }
}

impl Session {
    /// A session over a database, with no library installed.
    pub fn new(db: Database) -> Self {
        Session {
            db,
            library: String::new(),
            index_cache: SharedIndexCache::default(),
            library_ast: OnceLock::new(),
            module_cache: Arc::new(RwLock::new(LruMap::new(MODULE_CACHE_CAP))),
            fixpoint_cache: Arc::new(RwLock::new(LruMap::new(FIXPOINT_CACHE_CAP))),
            incremental: incremental::env_enabled(),
            durability: None,
            group_commit: AtomicBool::new(false),
            watches: WatchRegistry::default(),
            watch_buffer: watch::env_buffer(),
        }
    }

    /// A session over `db` with an explicit [`EngineConfig`] applied.
    /// Ephemeral — the config's durability field is only consulted by
    /// [`Session::open_with`].
    pub fn with_config(db: Database, cfg: EngineConfig) -> Session {
        let mut session = Session::new(db);
        cfg.apply(&mut session);
        session
    }

    /// Open (or create) a **durable** session backed by the store
    /// directory at `path`, with the default [`DurabilityConfig`] (fsync
    /// policy from `REL_FSYNC`). See [`Session::open_with`].
    pub fn open(path: impl AsRef<Path>) -> RelResult<Session> {
        Session::open_with(path, DurabilityConfig::default())
    }

    /// Open (or create) a durable session with an explicit configuration
    /// — a full [`EngineConfig`], or (the legacy signature, still
    /// accepted via `Into`) just a [`DurabilityConfig`], which promotes
    /// with every other switch at its environment default.
    ///
    /// Recovery loads the newest valid snapshot and replays the WAL tail
    /// on top of it; the resulting database is **byte-identical to a
    /// prefix of the committed history** (all of it, after a clean
    /// shutdown). A torn final WAL record — a crash point — is recovered
    /// past with a warning; *mid-log* corruption is a hard
    /// [`RelError::Corrupt`] with the damaged byte offset.
    ///
    /// The session **degrades gracefully** instead of failing when the
    /// environment, not the data, is the problem:
    ///
    /// * `REL_DURABILITY=0/off/false/no` — returns a plain ephemeral
    ///   session without touching disk;
    /// * the directory cannot be created or read — returns an empty
    ///   ephemeral session with a one-time warning on stderr;
    /// * the store recovers but cannot be opened for appending (e.g. a
    ///   read-only volume) — returns an ephemeral session *seeded with
    ///   the recovered database*, with a one-time warning.
    ///
    /// No library is installed; compose with [`Session::with_library`].
    ///
    /// Note that [`Session::db_mut`] bypasses the WAL: direct mutations
    /// become durable only when the next compaction snapshots the full
    /// database. Transactions are the durable write path.
    pub fn open_with(path: impl AsRef<Path>, cfg: impl Into<EngineConfig>) -> RelResult<Session> {
        let cfg: EngineConfig = cfg.into();
        let dir = path.as_ref();
        if !durability::durability_env_enabled() {
            return Ok(Session::with_config(Database::new(), cfg));
        }
        if let Err(e) = std::fs::create_dir_all(dir) {
            durability::warn_degraded(&format!(
                "cannot create durable store at {} ({e}); continuing ephemeral — \
                 commits will NOT be persisted",
                dir.display()
            ));
            return Ok(Session::with_config(Database::new(), cfg));
        }
        let rec = match recovery::recover(dir) {
            Ok(rec) => rec,
            Err(e @ RelError::Corrupt(_)) => return Err(e),
            Err(e) => {
                durability::warn_degraded(&format!(
                    "cannot read durable store at {} ({e}); continuing ephemeral — \
                     commits will NOT be persisted",
                    dir.display()
                ));
                return Ok(Session::with_config(Database::new(), cfg));
            }
        };
        for w in &rec.warnings {
            eprintln!("rel durability warning: {w}");
        }
        match DurableStore::attach(dir, cfg.durability, &rec) {
            Ok(store) => {
                let mut session = Session::with_config(rec.db, cfg);
                session.durability = Some(Mutex::new(store));
                // A previous run may have crashed past the compaction
                // triggers; fold the replayed backlog down right away.
                session.maybe_compact();
                Ok(session)
            }
            Err(e) => {
                durability::warn_degraded(&format!(
                    "cannot append to durable store at {} ({e}); serving the \
                     recovered database ephemerally — commits will NOT be persisted",
                    dir.display()
                ));
                Ok(Session::with_config(rec.db, cfg))
            }
        }
    }

    /// Is this session backed by a durable store?
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    /// The durable store directory, when [`Session::is_durable`].
    pub fn durability_path(&self) -> Option<PathBuf> {
        self.durability.as_ref().map(|s| {
            s.lock()
                .unwrap_or_else(PoisonError::into_inner)
                .dir()
                .to_path_buf()
        })
    }

    /// Flush every acknowledged commit to stable storage now, regardless
    /// of the fsync policy. No-op for ephemeral sessions.
    pub fn sync(&self) -> RelResult<()> {
        match &self.durability {
            Some(store) => store.lock().unwrap_or_else(PoisonError::into_inner).sync(),
            None => Ok(()),
        }
    }

    /// Compact now: snapshot the current database and truncate the WAL,
    /// without waiting for the configured triggers. Returns whether a
    /// durable store was actually compacted (`false` for ephemeral
    /// sessions).
    pub fn compact_now(&self) -> RelResult<bool> {
        match &self.durability {
            Some(store) => {
                store
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .compact(&self.db)?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Append one committed transaction's net delta to the WAL. Called by
    /// [`Transaction::commit`] *after* constraint checks pass and before
    /// the candidate is installed: an `Err` aborts the commit with the
    /// session untouched, and an aborted/dropped transaction never
    /// reaches the log at all.
    pub(crate) fn log_commit(&self, delta: &Delta) -> RelResult<()> {
        if let Some(store) = &self.durability {
            let mut store = store.lock().unwrap_or_else(PoisonError::into_inner);
            if self.group_commit.load(Ordering::Relaxed) {
                store.append_commit_deferred(delta)?;
            } else {
                store.append_commit(delta)?;
            }
        }
        Ok(())
    }

    /// Open a **group-commit window**: until [`Session::end_commit_group`]
    /// closes it, every transaction commit appends its WAL record without
    /// syncing, and the close applies the fsync policy *once* over the
    /// whole group. This is how a commit queue coalesces N concurrent
    /// commits into one `fdatasync` — under [`FsyncPolicy::Always`] the
    /// ungrouped path pays one sync per commit.
    ///
    /// Contract: commits made inside the window must not be acknowledged
    /// to clients until `end_commit_group` returns `Ok` — a crash before
    /// the group sync may lose a suffix of them (recovery still lands on
    /// a clean prefix of the appended history; the WAL framing and
    /// torn-tail scan are unchanged). No-op for ephemeral sessions.
    ///
    /// [`FsyncPolicy::Always`]: crate::durability::FsyncPolicy::Always
    pub fn begin_commit_group(&mut self) {
        self.group_commit.store(true, Ordering::Relaxed);
    }

    /// Close the group-commit window opened by
    /// [`Session::begin_commit_group`] and apply the fsync policy once
    /// over every commit inside it. Returns how many commits the sync
    /// covered (`0` for ephemeral sessions, under `FsyncPolicy::Off`, or
    /// under `Batch` while the running batch is still short). On `Err`
    /// the group's durability is unknown and none of its commits may be
    /// acknowledged.
    pub fn end_commit_group(&mut self) -> RelResult<u64> {
        self.group_commit.store(false, Ordering::Relaxed);
        match &self.durability {
            Some(store) => {
                store.lock().unwrap_or_else(PoisonError::into_inner).flush_group()
            }
            None => Ok(0),
        }
    }

    /// Is a group-commit window currently open?
    pub fn in_commit_group(&self) -> bool {
        self.group_commit.load(Ordering::Relaxed)
    }

    /// Run compaction if either trigger (commit count / log size) fired.
    /// Compaction failure is a warning, not an error: the commits are
    /// safe in the WAL, and the next commit retries.
    pub(crate) fn maybe_compact(&self) {
        let Some(store) = &self.durability else { return };
        let mut store = store.lock().unwrap_or_else(PoisonError::into_inner);
        if store.should_compact() {
            if let Err(e) = store.compact(&self.db) {
                eprintln!(
                    "rel durability warning: compaction failed (the WAL still \
                     holds every commit; will retry): {e}"
                );
            }
        }
    }

    /// Append library source (e.g. the standard library) that is compiled
    /// in front of every query. Invalidates this session's cached library
    /// parse and compiled modules (clones sharing the old cache keep
    /// theirs — they still compile against the old library).
    pub fn install_library(&mut self, src: &str) {
        self.library.push_str(src);
        self.library.push('\n');
        self.library_ast = OnceLock::new();
        self.module_cache = Arc::new(RwLock::new(LruMap::new(MODULE_CACHE_CAP)));
        // The old library's compiled modules can never be looked up again
        // through this session, so their captured fixpoints would only
        // pin retired modules and pre-change relation state — swap the
        // cache out with the module cache (clones on the old library keep
        // both of theirs).
        self.fixpoint_cache = Arc::new(RwLock::new(LruMap::new(FIXPOINT_CACHE_CAP)));
    }

    /// Turn incremental evaluation on or off for this session (overriding
    /// the `REL_INCREMENTAL` environment default). With it off, every
    /// evaluation — including [`Transaction::commit`]'s constraint
    /// re-check — re-materializes from scratch; results are byte-identical
    /// either way (the `incremental_equivalence` suite holds both modes to
    /// that).
    pub fn set_incremental(&mut self, on: bool) {
        self.incremental = on;
    }

    /// Select how this session routes multi-atom conjunctions through the
    /// leapfrog worst-case-optimal join kernel, overriding the `REL_WCOJ`
    /// environment default ([`crate::WcojMode::Off`] = never,
    /// [`crate::WcojMode::Force`] = threshold 0 — every eligible
    /// conjunction). The mode travels with the session's shared index
    /// cache, so it reaches every evaluator the session spawns — fixpoint
    /// workers, transactions, prepared executes, incremental restarts.
    /// Results are byte-identical in every mode (the `wcoj_equivalence`
    /// suite holds all of them to that); the switch is a perf escape
    /// hatch and test axis, like `REL_EVAL_THREADS`/`REL_INCREMENTAL`.
    ///
    /// Changing the mode swaps in a fresh cache handle (the
    /// [`Session::install_library`] pattern), so — like
    /// [`Session::set_incremental`] — the setting is per session: clones
    /// keep their old handle, mode, and warm indexes; this session's
    /// indexes rebuild lazily.
    pub fn set_wcoj(&mut self, mode: crate::WcojMode) {
        if self.index_cache.wcoj_mode() == mode {
            return;
        }
        self.index_cache = SharedIndexCache::with_wcoj(mode);
    }

    /// The session's current WCOJ routing mode.
    pub fn wcoj_mode(&self) -> crate::WcojMode {
        self.index_cache.wcoj_mode()
    }

    /// Turn the typed columnar storage layout on or off (overriding the
    /// `REL_COLUMNAR` environment default). Off, every kernel runs the
    /// boxed-row fallback: set operations merge-walk `Value`s, tries
    /// compare boxed cells, and no projections are built. Results are
    /// byte-identical either way (the `columnar_equivalence` suite holds
    /// both layouts to that).
    ///
    /// Unlike [`Session::set_wcoj`], the switch is **process-wide** — the
    /// columnar kernels live in `rel-core`, below any session context —
    /// so flipping it affects every session in the process (it simply
    /// forwards to [`rel_core::set_columnar_enabled`]). Cached tries and
    /// projections built under the previous setting remain valid (both
    /// layouts agree on every comparison) and are replaced as relations
    /// change generation.
    pub fn set_columnar(&mut self, on: bool) {
        rel_core::set_columnar_enabled(on);
    }

    /// Is the process-wide columnar layout switch on?
    pub fn columnar_enabled(&self) -> bool {
        rel_core::columnar_enabled()
    }

    /// Turn hot-path metrics collection on or off (overriding the
    /// `REL_METRICS` environment default). Like [`Session::set_columnar`],
    /// the switch is **process-wide**: the registry sits below any session
    /// context (it simply forwards to [`crate::metrics::set_metrics`]).
    /// Cold-path counters — commits, aborts, WAL bytes, fsyncs,
    /// compactions, snapshot publishes — record regardless.
    pub fn set_metrics(&mut self, on: bool) {
        metrics::set_metrics(on);
    }

    /// Is the process-wide hot-path metrics switch on?
    pub fn metrics_enabled(&self) -> bool {
        metrics::enabled()
    }

    /// Is incremental evaluation enabled for this session?
    pub fn incremental_enabled(&self) -> bool {
        self.incremental
    }

    /// Register a **standing query**: evaluate `prepared` (with `params`
    /// bound) against the current committed database and return a
    /// [`Watch`] whose channel already holds the initial snapshot batch;
    /// after every later [`Transaction::commit`] that can affect the
    /// result, the exact added/removed output rows are pushed as a
    /// [`crate::WatchDelta`]. Commits outside the query's dependent cone
    /// are skipped without evaluating anything. See [`crate::watch`] for
    /// the full delivery/ordering contract.
    pub fn watch(&self, prepared: &Prepared, params: &Params) -> RelResult<Watch> {
        watch::register(self, &self.watches, prepared, params)
    }

    /// Number of live standing queries on this session.
    pub fn watch_count(&self) -> usize {
        self.watches.len()
    }

    /// Bound the delivery buffer of watches registered *from now on*, in
    /// batches (clamped to at least 1; existing watches keep the buffer
    /// they were registered with). Overrides the `REL_WATCH_BUFFER`
    /// environment default.
    pub fn set_watch_buffer(&mut self, batches: usize) {
        self.watch_buffer = batches.max(1);
    }

    /// The delivery-buffer bound new watches will be registered with.
    pub fn watch_buffer(&self) -> usize {
        self.watch_buffer
    }

    /// Fan a committed transaction's effects out to every standing query
    /// (called by [`Transaction::commit`] right after the candidate
    /// database is installed).
    pub(crate) fn notify_watches(&self, touched: &BTreeSet<Name>) {
        watch::notify(&self.watches, self, touched);
    }

    /// Builder-style library installation.
    pub fn with_library(mut self, src: &str) -> Self {
        self.install_library(src);
        self
    }

    /// The current database.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// Mutable database access (e.g. for loading data).
    pub fn db_mut(&mut self) -> &mut Database {
        &mut self.db
    }

    /// The installed library, parsed (parsing happens at most once per
    /// library revision).
    fn library_program(&self) -> RelResult<Arc<Program>> {
        if let Some(p) = self.library_ast.get() {
            return Ok(Arc::clone(p));
        }
        let parsed = Arc::new(rel_syntax::parse_program(&self.library)?);
        // Two racing threads both parse; `get_or_init` keeps one.
        Ok(Arc::clone(self.library_ast.get_or_init(|| parsed)))
    }

    /// Compile a query against the installed library, through the
    /// session's module cache: the same source string is analyzed at most
    /// once per library revision (and the library prefix is *parsed* at
    /// most once per revision). The cache-hit path is allocation-free.
    /// The returned handle is shared — cloning it is free.
    pub fn compile(&self, src: &str) -> RelResult<Arc<Module>> {
        if let Some(m) = self
            .module_cache
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(src)
        {
            if metrics::enabled() {
                metrics::registry().module_cache_hits.incr();
            }
            return Ok(m);
        }
        if metrics::enabled() {
            metrics::registry().module_cache_misses.incr();
        }
        let mut program = (*self.library_program()?).clone();
        program.extend(rel_syntax::parse_program(src)?);
        let module = Arc::new(rel_sema::analyze(&program)?);
        self.module_cache
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert(src.to_string(), Arc::clone(&module));
        Ok(module)
    }

    /// Materialize a compiled module against `db` through the session's
    /// incremental machinery: when a fixpoint of this module was captured
    /// before (and incremental mode is on), only the dependent cone of
    /// the base relations whose generations moved is re-derived — an
    /// unchanged database costs O(#relations) pointer bumps. The freshly
    /// produced state is captured for the next call. Results are
    /// byte-identical to a full [`materialize_with_cache`] run.
    pub(crate) fn materialize_module(
        &self,
        module: &Arc<Module>,
        db: &Database,
    ) -> RelResult<BTreeMap<Name, Relation>> {
        self.materialize_module_outcome(module, db).map(|(rels, _)| rels)
    }

    /// [`Session::materialize_module`], also reporting *how* the
    /// evaluation was served (full, pure cache reuse, or incremental with
    /// per-stratum classification) — the fixpoint line of a
    /// [`QueryProfile`].
    pub(crate) fn materialize_module_outcome(
        &self,
        module: &Arc<Module>,
        db: &Database,
    ) -> RelResult<(BTreeMap<Name, Relation>, FixpointOutcome)> {
        if !self.incremental {
            let rels = materialize_with_cache(module, db, self.index_cache.clone())?;
            return Ok((rels, FixpointOutcome::Full));
        }
        let key = Arc::as_ptr(module) as usize;
        let pre = self
            .fixpoint_cache
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(&key)
            .and_then(|(m, pre)| Arc::ptr_eq(&m, module).then_some(pre));
        if let Some(pre) = &pre {
            // Pure reuse: nothing moved since capture, so the captured
            // state *is* this evaluation's result — no re-derivation, no
            // re-capture, and (the hot concurrent path) no write lock.
            if pre.touched_in(db).is_empty() {
                if metrics::enabled() {
                    metrics::registry().fixpoint_cache_hits.incr();
                }
                return Ok((pre.state().clone(), FixpointOutcome::CacheReuse));
            }
        }
        if metrics::enabled() {
            metrics::registry().fixpoint_cache_misses.incr();
        }
        let (rels, outcome) = match pre {
            Some(pre) => {
                let (rels, stats) = incremental::materialize_incremental_with_stats(
                    module,
                    &pre,
                    db,
                    self.index_cache.clone(),
                )?;
                (rels, FixpointOutcome::Incremental(stats))
            }
            None => (
                materialize_with_cache(module, db, self.index_cache.clone())?,
                FixpointOutcome::Full,
            ),
        };
        self.fixpoint_cache
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert(key, (Arc::clone(module), Arc::new(PreState::capture(db, &rels))));
        Ok((rels, outcome))
    }

    /// Compile a query once into a [`Prepared`] handle that can be
    /// executed any number of times — against the session's *current*
    /// database snapshot each time, with `?name` parameters bound at
    /// execute time and **zero recompilation** (asserted by tests against
    /// the [`rel_sema::compilations`] counter):
    ///
    /// ```
    /// use rel_core::database::figure1_database;
    /// use rel_engine::{Params, Session};
    ///
    /// let s = Session::new(figure1_database());
    /// let q = s.prepare("def output(x) : ProductPrice(x, ?min)").unwrap();
    /// let cheap = q.execute_with(&s, &Params::new().set("min", 10)).unwrap();
    /// assert_eq!(cheap.rows::<String>().unwrap(), vec!["P1".to_string()]);
    /// ```
    pub fn prepare(&self, src: &str) -> RelResult<Prepared> {
        let module = self.compile(src)?;
        check_control_materializable(&module)?;
        Ok(Prepared::new(module, src.to_string()))
    }

    /// Run a read-only query: returns the `output` relation. Integrity
    /// constraints in scope are checked; `insert`/`delete` rules are
    /// evaluated but **not** applied. Equivalent to
    /// `self.prepare(src)?.execute(self)` minus the reusable handle.
    pub fn query(&self, src: &str) -> RelResult<Relation> {
        // With a slow-query threshold armed, run under a profile sink so
        // a crossing logs *what the query did*, not just that it was slow.
        if metrics::slow_query_ms().is_some() {
            return self.query_profiled(src).map(|(out, _)| out);
        }
        let start = metrics::enabled().then(std::time::Instant::now);
        let module = self.compile(src)?;
        check_control_materializable(&module)?;
        require_no_params(&module)?;
        let rels = self.materialize_module(&module, &self.db)?;
        check_constraints(&module, &rels)?;
        if let Some(start) = start {
            metrics::registry().query_us.record(start.elapsed());
        }
        Ok(rels.get("output").cloned().unwrap_or_default())
    }

    /// [`Session::query`] under a profile sink: returns the `output`
    /// relation — byte-identical to an unprofiled run — together with a
    /// [`QueryProfile`] of what the engine did to produce it (per-stratum
    /// wall times and kernel choices, cache/reuse outcomes, incremental
    /// classification). Profiled runs evaluate strata sequentially so the
    /// per-stratum wall times are attributable; see
    /// [`crate::profile`] for how to read the result.
    pub fn query_profiled(&self, src: &str) -> RelResult<(Relation, QueryProfile)> {
        let start = std::time::Instant::now();
        let module_cache_hit = self
            .module_cache
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(src)
            .is_some();
        let module = self.compile(src)?;
        check_control_materializable(&module)?;
        require_no_params(&module)?;
        let (out, profile) =
            self.run_profiled(start, module_cache_hit, |s| {
                let (rels, outcome) = s.materialize_module_outcome(&module, &s.db)?;
                check_constraints(&module, &rels)?;
                Ok((rels.get("output").cloned().unwrap_or_default(), outcome))
            })?;
        Ok((out, profile))
    }

    /// Shared profiled-evaluation harness ([`Session::query_profiled`],
    /// [`crate::Prepared::execute_profiled`]): install a fresh sink on the
    /// index cache, run `eval`, uninstall, and assemble the
    /// [`QueryProfile`] (recording query latency and the slow-query log
    /// on the way out).
    pub(crate) fn run_profiled<T>(
        &self,
        start: std::time::Instant,
        module_cache_hit: bool,
        eval: impl FnOnce(&Session) -> RelResult<(T, FixpointOutcome)>,
    ) -> RelResult<(T, QueryProfile)> {
        let sink = Arc::new(ProfileSink::new());
        self.index_cache.set_profile(Some(Arc::clone(&sink)));
        let result = eval(self);
        self.index_cache.set_profile(None);
        let (value, fixpoint) = result?;
        let profile = QueryProfile {
            wall: start.elapsed(),
            module_cache_hit,
            fixpoint,
            strata: sink.take_strata(),
        };
        if metrics::enabled() {
            metrics::registry().query_us.record(profile.wall);
        }
        if let Some(ms) = metrics::slow_query_ms() {
            if profile.wall.as_millis() as u64 >= ms {
                metrics::registry().slow_queries.incr();
                eprintln!(
                    "rel slow query (>= {ms}ms threshold):\n{}",
                    profile.render()
                );
            }
        }
        Ok((value, profile))
    }

    /// Was this query source already compiled into the session's module
    /// cache? (Profile plumbing for the prepared API.)
    pub(crate) fn module_cached(&self, src: &str) -> bool {
        self.module_cache
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(src)
            .is_some()
    }

    /// Evaluate a query and return an arbitrary derived relation (useful
    /// for tests and tooling). Demand-driven relations cannot be fetched
    /// whole.
    pub fn eval(&self, src: &str, relation: &str) -> RelResult<Relation> {
        let module = self.compile(src)?;
        require_no_params(&module)?;
        let rels = self.materialize_module(&module, &self.db)?;
        Ok(rels.get(relation).cloned().unwrap_or_default())
    }

    /// Open an explicit transaction over an O(1) copy-on-write snapshot
    /// of the current database. Staged steps ([`Transaction::run`],
    /// [`Transaction::run_prepared`], [`Transaction::stage_insert`],
    /// [`Transaction::stage_delete`]) see each other's effects; integrity
    /// constraints are checked on [`Transaction::commit`], and
    /// [`Transaction::abort`] (or a plain drop) discards everything at
    /// zero cost.
    pub fn begin(&mut self) -> Transaction<'_> {
        Transaction::begin(self)
    }

    /// Execute a one-shot transaction: evaluate, build the delta from the
    /// `insert` and `delete` control relations, check integrity
    /// constraints against the post-state, and commit (or abort, leaving
    /// the database untouched). A thin wrapper over
    /// [`Session::begin`] → [`Transaction::run`] → [`Transaction::commit`].
    pub fn transact(&mut self, src: &str) -> RelResult<TxnOutcome> {
        let mut txn = self.begin();
        txn.run(src)?;
        txn.commit()
    }
}

/// A module whose `?name` parameters are unbound can only run through the
/// prepared-query API, which supplies the reserved relations.
pub(crate) fn require_no_params(module: &Module) -> RelResult<()> {
    if let Some(p) = module.params.first() {
        return Err(RelError::unsafe_expr(format!(
            "query references parameter `?{p}`: prepare it and bind values \
             via `Prepared::execute_with`"
        )));
    }
    Ok(())
}

/// Control relations must be fully materializable: a demand-driven
/// `output` would silently evaluate to nothing.
pub(crate) fn check_control_materializable(module: &Module) -> RelResult<()> {
    for control in ["output", "insert", "delete"] {
        if let Some(info) = module.pred_info.get(control) {
            if let rel_sema::ir::EvalMode::Demand { bound_prefix } = info.mode {
                return Err(RelError::unsafe_expr(format!(
                    "`{control}` is not materializable: its first {bound_prefix} \
                     argument(s) would need to be bound externally — some rule \
                     cannot ground them"
                )));
            }
        }
    }
    Ok(())
}

/// Build a [`Delta`] from the `insert`/`delete` control relations: each
/// tuple is `⟨:RelName, v₁, …, vₙ⟩` (§3.4).
pub(crate) fn extract_delta(rels: &BTreeMap<Name, Relation>) -> RelResult<Delta> {
    let mut delta = Delta::default();
    for (control, is_insert) in [("insert", true), ("delete", false)] {
        let Some(rel) = rels.get(control) else { continue };
        for t in rel.iter() {
            let Some(Value::Symbol(target)) = t.get(0) else {
                return Err(RelError::type_err(format!(
                    "`{control}` tuples must start with a :RelationName symbol, got {t}"
                )));
            };
            let rest = Tuple::from(t.values()[1..].to_vec());
            if is_insert {
                delta.insert(target.as_ref(), rest);
            } else {
                delta.delete(target.as_ref(), rest);
            }
        }
    }
    Ok(delta)
}

/// Evaluate every integrity constraint's violation query; the first
/// non-empty one aborts.
pub fn check_constraints(module: &Module, rels: &BTreeMap<Name, Relation>) -> RelResult<()> {
    let cx = EvalCtx::new(module, rels);
    for c in &module.constraints {
        let witnesses = eval_constraint(&cx, c)?;
        if !witnesses.is_empty() {
            let rendered: Vec<String> =
                witnesses.iter().take(5).map(|t| t.to_string()).collect();
            return Err(RelError::ConstraintViolation {
                name: c.name.to_string(),
                witnesses: format!("{{{}}}", rendered.join("; ")),
            });
        }
    }
    Ok(())
}

/// Evaluate one constraint's violation query as a synthetic rule.
pub fn eval_constraint(cx: &EvalCtx<'_>, c: &ConstraintIr) -> RelResult<Relation> {
    let rule = Rule {
        pred: c.name.clone(),
        params: c.params.clone(),
        body: c.body.clone(),
        vars: c.vars.clone(),
    };
    cx.eval_rule(&rule, Env::new(rule.vars.len()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rel_core::database::figure1_database;
    use rel_core::tuple;

    fn session() -> Session {
        Session::new(figure1_database())
    }

    #[test]
    fn basic_query_output() {
        // §3.4: products whose price exceeds 30.
        let out = session()
            .query("def output(x) : exists( (y) | ProductPrice(x,y) and y > 30)")
            .unwrap();
        assert_eq!(out, Relation::from_tuples([tuple!["P4"]]));
    }

    #[test]
    fn order_with_payment() {
        // §3.1 — set semantics: "O1" appears once despite two payments.
        let out = session()
            .query("def output(y) : exists((x) | PaymentOrder(x,y))")
            .unwrap();
        assert_eq!(
            out,
            Relation::from_tuples([tuple!["O1"], tuple!["O2"], tuple!["O3"]])
        );
    }

    #[test]
    fn transact_insert_creates_relation() {
        let mut s = session();
        let outcome = s
            .transact("def insert(:ClosedOrders, x) : PaymentOrder(_, x)")
            .unwrap();
        assert_eq!(outcome.inserted, 3);
        assert_eq!(s.db().get("ClosedOrders").unwrap().len(), 3);
    }

    #[test]
    fn transact_delete() {
        let mut s = session();
        let outcome = s
            .transact("def delete(:ProductPrice, x, y) : ProductPrice(x, y) and y > 30")
            .unwrap();
        assert_eq!(outcome.deleted, 1);
        assert_eq!(s.db().get("ProductPrice").unwrap().len(), 3);
    }

    #[test]
    fn violated_constraint_aborts() {
        let mut s = session();
        let err = s
            .transact(
                "def insert(:OrderProductQuantity, x, y, z) : \
                   x = \"O9\" and y = \"P9\" and z = 1\n\
                 ic valid_products(p) requires \
                   OrderProductQuantity(_,p,_) implies ProductPrice(p,_)",
            )
            .unwrap_err();
        assert!(matches!(err, RelError::ConstraintViolation { .. }), "{err}");
        // Aborted: database unchanged.
        assert_eq!(s.db().get("OrderProductQuantity").unwrap().len(), 4);
    }

    #[test]
    fn satisfied_constraint_commits() {
        let mut s = session();
        s.transact(
            "def insert(:OrderProductQuantity, x, y, z) : \
               x = \"O9\" and y = \"P1\" and z = 1\n\
             ic valid_products(p) requires \
               OrderProductQuantity(_,p,_) implies ProductPrice(p,_)",
        )
        .unwrap();
        assert_eq!(s.db().get("OrderProductQuantity").unwrap().len(), 5);
    }

    #[test]
    fn boolean_constraint_checked() {
        let s = session();
        let err = s
            .query(
                "def output(x) : ProductPrice(x, _)\n\
                 ic impossible() requires ProductPrice(\"P1\", 11)",
            )
            .unwrap_err();
        assert!(matches!(err, RelError::ConstraintViolation { .. }), "{err}");
    }

    #[test]
    fn control_materializable_message_is_single_spaced() {
        // A demand-driven `output` (its argument can't be grounded
        // bottom-up) must be rejected with a readable message: exactly the
        // text below, no embedded runs of whitespace from the source
        // literal's line continuation.
        let err = session()
            .query("def output(x) : x > 3")
            .unwrap_err();
        assert_eq!(
            err.to_string(),
            "safety error: `output` is not materializable: its first 1 \
             argument(s) would need to be bound externally — some rule \
             cannot ground them"
        );
        assert!(!err.to_string().contains("  "), "double space in: {err}");
    }

    #[test]
    fn compile_is_cached_per_source() {
        // Cache hits are proven by pointer identity — a recompile could
        // never hand back the same allocation. (Exact compilation-counter
        // deltas are asserted in the isolated `prepared_compile_once`
        // integration binary; the counter is process-global, so sibling
        // tests in this binary would race an exact assertion here.)
        let s = session();
        let m1 = s.compile("def output(x) : ProductPrice(x, _)").unwrap();
        let m2 = s.compile("def output(x) : ProductPrice(x, _)").unwrap();
        assert!(Arc::ptr_eq(&m1, &m2), "same source must be served from the cache");
        // Different source: a different module.
        let m3 = s.compile("def output(x) : PaymentOrder(x, _)").unwrap();
        assert!(!Arc::ptr_eq(&m1, &m3));
        // A clone shares the cache.
        let c = s.clone();
        let m4 = c.compile("def output(x) : ProductPrice(x, _)").unwrap();
        assert!(Arc::ptr_eq(&m1, &m4));
    }

    #[test]
    fn install_library_invalidates_cached_parse() {
        let mut s = session();
        s.query("def output(x) : ProductPrice(x, _)").unwrap();
        s.install_library("def Cheap(x) : ProductPrice(x, 10)\n");
        let out = s.query("def output(x) : Cheap(x)").unwrap();
        assert_eq!(out, Relation::from_tuples([tuple!["P1"]]));
    }

    #[test]
    fn session_is_send_and_sync() {
        // Compile-time assertion: the evaluation core's interior state is
        // lock-based, so a session can be shared across threads.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Session>();
        assert_send_sync::<SharedIndexCache>();
        assert_send_sync::<EvalCtx<'static>>();
    }

    #[test]
    fn concurrent_queries_share_one_session() {
        // One session, many threads: every thread sees the same answer a
        // single-threaded query produces, and the shared index cache
        // survives the contention.
        let s = session();
        let expected = s
            .query("def output(x) : exists( (y) | ProductPrice(x,y) and y > 30)")
            .unwrap();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let s = &s;
                    scope.spawn(move || {
                        s.query(
                            "def output(x) : exists( (y) | ProductPrice(x,y) and y > 30)",
                        )
                        .unwrap()
                    })
                })
                .collect();
            for h in handles {
                assert_eq!(h.join().unwrap(), expected);
            }
        });
    }

    #[test]
    fn repeated_queries_reuse_the_captured_fixpoint() {
        // Same module, unchanged database: the second evaluation must
        // reuse the captured fixpoint by pointer (a recompute would build
        // fresh storage for the derived relation).
        let mut s = session();
        s.set_incremental(true);
        let src = "def Joined(x, o) : \
                   exists((p) | OrderProductQuantity(o, x, _) and ProductPrice(x, p))";
        let a = s.eval(src, "Joined").unwrap();
        let b = s.eval(src, "Joined").unwrap();
        assert!(!a.is_empty());
        assert!(
            b.shares_storage(&a),
            "unchanged snapshot must be served from the fixpoint cache"
        );
        // A mutation moves the touched relation's generation; the next
        // evaluation re-derives (fresh storage) with the new data.
        s.db_mut().insert("ProductPrice", tuple!["P9", 99]);
        s.db_mut().insert("OrderProductQuantity", tuple!["O9", "P9", 1]);
        let c = s.eval(src, "Joined").unwrap();
        assert!(!c.shares_storage(&a));
        assert_eq!(c.len(), a.len() + 1);
    }

    #[test]
    fn session_clones_cannot_poison_each_others_fixpoints() {
        // Clones share the fixpoint cache, but entries are validated by
        // base-relation generations — a clone whose database diverged
        // must never be served the other clone's state.
        let mut a = session();
        a.set_incremental(true);
        let src = "def output(x) : exists( (y) | ProductPrice(x,y) and y > 30)";
        let mut b = a.clone();
        assert_eq!(a.query(src).unwrap().len(), 1);
        b.db_mut().insert("ProductPrice", tuple!["P9", 99]);
        assert_eq!(b.query(src).unwrap().len(), 2, "clone must see its own data");
        assert_eq!(a.query(src).unwrap().len(), 1, "original must keep its answer");
    }

    #[test]
    fn commit_invalidates_indexes_of_touched_relations() {
        let mut s = session();
        // Build an index over ProductPrice (the join binds x, indexing on
        // the bound position) and record the pre-commit generation.
        s.query("def output(y) : ProductPrice(\"P1\", y)").unwrap();
        let old_gen = s.db().get("ProductPrice").unwrap().generation();
        let pre = s.index_cache.generations_for("ProductPrice");
        assert!(
            pre.contains(&old_gen),
            "expected an index built against the pre-commit generation, got {pre:?}"
        );
        // Commit a transaction that touches ProductPrice. The module here
        // never *reads* ProductPrice through an index, so without
        // per-relation invalidation the old entry would linger.
        s.transact("def insert(:ProductPrice, x, y) : x = \"P9\" and y = 99")
            .unwrap();
        let post = s.index_cache.generations_for("ProductPrice");
        assert!(
            !post.contains(&old_gen),
            "a committed transaction must not retain an index built against \
             the pre-commit generation (left: {post:?})"
        );
        // And the next query sees the committed tuple.
        let out = s
            .query("def output(x) : exists( (y) | ProductPrice(x,y) and y > 30)")
            .unwrap();
        assert_eq!(out, Relation::from_tuples([tuple!["P4"], tuple!["P9"]]));
    }

    #[test]
    fn wcoj_modes_agree_on_query_results() {
        use crate::WcojMode;
        let mut db = Database::new();
        for (a, b) in [(1, 2), (2, 3), (1, 3), (3, 4), (2, 4), (1, 4)] {
            db.insert("E", tuple![a, b]);
        }
        let mut s = Session::new(db);
        // Incremental reuse would serve the repeat queries from the
        // fixpoint cache without re-evaluating — pin it off so every mode
        // actually runs its join path.
        s.set_incremental(false);
        let src = "def output(a,b,c) : E(a,b) and E(b,c) and E(a,c)";
        s.set_wcoj(WcojMode::Off);
        let off = s.query(src).unwrap();
        let joins_off = s.index_cache.wcoj_join_count();
        s.set_wcoj(WcojMode::Auto);
        let auto = s.query(src).unwrap();
        assert!(
            s.index_cache.wcoj_join_count() > joins_off,
            "session-level set_wcoj must reach the evaluator"
        );
        s.set_wcoj(WcojMode::Force);
        let forced = s.query(src).unwrap();
        assert_eq!(s.wcoj_mode(), WcojMode::Force);
        let flat = |r: &Relation| r.iter().cloned().collect::<Vec<_>>();
        assert_eq!(flat(&off), flat(&auto));
        assert_eq!(flat(&off), flat(&forced));
        assert_eq!(off.len(), 4, "fixture has four triangles");
    }

    #[test]
    fn set_columnar_layouts_agree_on_query_results() {
        let mut db = Database::new();
        for (a, b) in [(1, 2), (2, 3), (1, 3), (3, 4), (2, 4), (1, 4)] {
            db.insert("E", tuple![a, b]);
        }
        let mut s = Session::new(db);
        s.set_incremental(false);
        let src = "def output(a,b,c) : E(a,b) and E(b,c) and E(a,c)";
        let prev = s.columnar_enabled();
        s.set_columnar(true);
        assert!(s.columnar_enabled());
        let on = s.query(src).unwrap();
        s.set_columnar(false);
        assert!(!s.columnar_enabled());
        let off = s.query(src).unwrap();
        s.set_columnar(prev);
        let flat = |r: &Relation| r.iter().cloned().collect::<Vec<_>>();
        assert_eq!(flat(&on), flat(&off));
        assert_eq!(on.len(), 4, "fixture has four triangles");
    }

    #[test]
    fn set_wcoj_is_per_session_across_clones() {
        // Like set_incremental, the WCOJ switch must not leak through
        // clones: the clone keeps the handle (and mode) it was created
        // with.
        use crate::WcojMode;
        let mut a = session();
        a.set_wcoj(WcojMode::Force);
        let mut b = a.clone();
        a.set_wcoj(WcojMode::Off);
        assert_eq!(a.wcoj_mode(), WcojMode::Off);
        assert_eq!(b.wcoj_mode(), WcojMode::Force, "clone's mode must not move");
        b.set_wcoj(WcojMode::Auto);
        assert_eq!(a.wcoj_mode(), WcojMode::Off, "original's mode must not move");
    }

    #[test]
    fn durable_session_roundtrips_commits() {
        use crate::durability::FsyncPolicy;
        let dir = std::env::temp_dir()
            .join(format!("rel-sess-dur-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = DurabilityConfig { fsync: FsyncPolicy::Off, ..Default::default() };
        {
            let mut s = Session::open_with(&dir, cfg).unwrap();
            assert!(s.is_durable());
            assert_eq!(s.durability_path().as_deref(), Some(dir.as_path()));
            s.transact("def insert(:E, x, y) : x = 1 and y = 2").unwrap();
            s.transact("def insert(:E, x, y) : x = 2 and y = 3").unwrap();
            s.transact("def delete(:E, x, y) : E(x, y) and x = 1").unwrap();
            s.sync().unwrap();
        }
        let s = Session::open_with(&dir, cfg).unwrap();
        assert_eq!(s.db().get("E").unwrap().len(), 1);
        assert!(s.db().get("E").unwrap().contains(&tuple![2, 3]));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn durable_session_compacts_and_recovers_from_snapshot() {
        use crate::durability::FsyncPolicy;
        use crate::wal;
        let dir = std::env::temp_dir()
            .join(format!("rel-sess-compact-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // Compact after every other commit.
        let cfg = DurabilityConfig {
            fsync: FsyncPolicy::Off,
            compact_after_commits: 2,
            ..Default::default()
        };
        {
            let mut s = Session::open_with(&dir, cfg).unwrap();
            for n in 1..=5 {
                s.transact(&format!("def insert(:E, x) : x = {n}")).unwrap();
            }
        }
        // Commits 1–4 were folded into a snapshot; only commit 5 remains
        // in the log.
        let scan =
            wal::scan(&dir.join(wal::WAL_FILE), &wal::read_log(&dir).unwrap()).unwrap();
        assert_eq!(scan.records.len(), 1, "log must hold exactly the post-snapshot tail");
        assert_eq!(scan.records[0].seq, 5);
        let s = Session::open_with(&dir, cfg).unwrap();
        assert_eq!(s.db().get("E").unwrap().len(), 5);
        // Forced compaction empties the log and survives another reopen.
        assert!(s.compact_now().unwrap());
        let scan =
            wal::scan(&dir.join(wal::WAL_FILE), &wal::read_log(&dir).unwrap()).unwrap();
        assert!(scan.records.is_empty());
        drop(s);
        let s = Session::open_with(&dir, cfg).unwrap();
        assert_eq!(s.db().get("E").unwrap().len(), 5);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn clones_of_durable_sessions_are_ephemeral() {
        use crate::durability::FsyncPolicy;
        let dir = std::env::temp_dir()
            .join(format!("rel-sess-clone-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = DurabilityConfig { fsync: FsyncPolicy::Off, ..Default::default() };
        let mut s = Session::open_with(&dir, cfg).unwrap();
        s.transact("def insert(:E, x) : x = 1").unwrap();
        let mut replica = s.clone();
        assert!(!replica.is_durable(), "clones must not share the WAL");
        replica.transact("def insert(:E, x) : x = 2").unwrap();
        assert_eq!(replica.db().get("E").unwrap().len(), 2);
        drop(s);
        drop(replica);
        let s = Session::open_with(&dir, cfg).unwrap();
        assert_eq!(s.db().get("E").unwrap().len(), 1, "replica commits stay in memory");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn aborted_and_constraint_failed_transactions_leave_no_wal_trace() {
        use crate::durability::FsyncPolicy;
        use crate::wal;
        let dir = std::env::temp_dir()
            .join(format!("rel-sess-abort-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = DurabilityConfig { fsync: FsyncPolicy::Off, ..Default::default() };
        let mut s = Session::open_with(&dir, cfg).unwrap();
        s.transact("def insert(:E, x) : x = 1").unwrap();
        let baseline = wal::read_log(&dir).unwrap().len();
        // Explicit abort, plain drop, and a commit-time constraint
        // violation: none may grow the log by a single byte.
        let mut txn = s.begin();
        txn.stage_insert("E", tuple![2]);
        txn.abort();
        {
            let mut txn = s.begin();
            txn.stage_insert("E", tuple![3]);
        }
        let err = s
            .transact(
                "def insert(:E, x) : x = 4\n\
                 ic never() requires E(1) implies E(99)",
            )
            .unwrap_err();
        assert!(matches!(err, RelError::ConstraintViolation { .. }), "{err}");
        assert_eq!(wal::read_log(&dir).unwrap().len(), baseline);
        // And a no-op commit (staged then reverted) logs nothing either.
        let mut txn = s.begin();
        txn.stage_insert("E", tuple![7]);
        txn.stage_delete("E", &tuple![7]);
        txn.commit().unwrap();
        assert_eq!(wal::read_log(&dir).unwrap().len(), baseline);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn integer_quantities_ic_holds() {
        // §3.5 with the Figure 1 data: all quantities are integers.
        let s = session();
        s.query(
            "def output(x) : ProductPrice(x, _)\n\
             ic integer_quantities() requires \
               forall((x) | OrderProductQuantity(_,_,x) implies Int(x))",
        )
        .unwrap();
    }
}
