//! Sessions and transactions (§3.4–3.5 of the paper).
//!
//! A [`Session`] owns a [`Database`] plus installed library source (the
//! standard library and any user libraries). Executing a query is a
//! *transaction*: the program (library + query) is compiled and
//! materialized; the control relations `output`, `insert` and `delete`
//! steer the result; integrity constraints are checked against the
//! post-state and abort the transaction when violated.

use crate::env::Env;
use crate::eval::{EvalCtx, SharedIndexCache};
use crate::fixpoint::materialize_with_cache;
use rel_core::database::Delta;
use rel_core::{Database, Name, RelError, RelResult, Relation, Tuple, Value};
use rel_sema::ir::{ConstraintIr, Module, Rule};
use std::collections::BTreeMap;

/// Result of a committed transaction.
#[derive(Clone, Debug, Default)]
pub struct TxnOutcome {
    /// Contents of the `output` control relation.
    pub output: Relation,
    /// Number of tuples inserted into base relations.
    pub inserted: usize,
    /// Number of tuples deleted from base relations.
    pub deleted: usize,
}

/// An interactive session: a database plus library code.
///
/// The session also owns a [`SharedIndexCache`]: hash indexes built while
/// evaluating one query are keyed by relation generation, so they are
/// reused verbatim by later queries/transactions over the unchanged base
/// relations, and invalidated per relation as transactions commit.
///
/// # Threading model
///
/// `Session` is `Send + Sync` (asserted at compile time in this module's
/// tests): the CoW `Relation` storage is `Arc`-shared, the index cache is
/// `Arc<RwLock<…>>`, and the evaluator's interior state sits behind
/// locks. One session can therefore serve read-only [`Session::query`] /
/// [`Session::eval`] calls from many threads concurrently — each call
/// snapshots the database with O(1) CoW clones, and concurrent callers
/// share lazily built hash indexes through the generation-keyed cache.
/// Mutation ([`Session::transact`], [`Session::db_mut`]) takes `&mut
/// self`, so Rust's borrow rules serialize writers; wrap the session in
/// your own `RwLock` for a mixed read/write multi-threaded server.
/// Internally, every materialize run additionally fans independent
/// strata out across worker threads (see [`crate::fixpoint`]).
#[derive(Clone, Debug, Default)]
pub struct Session {
    db: Database,
    library: String,
    index_cache: SharedIndexCache,
}

impl Session {
    /// A session over a database, with no library installed.
    pub fn new(db: Database) -> Self {
        Session { db, library: String::new(), index_cache: SharedIndexCache::default() }
    }

    /// Append library source (e.g. the standard library) that is compiled
    /// in front of every query.
    pub fn install_library(&mut self, src: &str) {
        self.library.push_str(src);
        self.library.push('\n');
    }

    /// Builder-style library installation.
    pub fn with_library(mut self, src: &str) -> Self {
        self.install_library(src);
        self
    }

    /// The current database.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// Mutable database access (e.g. for loading data).
    pub fn db_mut(&mut self) -> &mut Database {
        &mut self.db
    }

    /// Compile a query against the installed library.
    pub fn compile(&self, src: &str) -> RelResult<Module> {
        let full = format!("{}\n{}", self.library, src);
        rel_sema::compile(&full)
    }

    /// Run a read-only query: returns the `output` relation. Integrity
    /// constraints in scope are checked; `insert`/`delete` rules are
    /// evaluated but **not** applied.
    pub fn query(&self, src: &str) -> RelResult<Relation> {
        let module = self.compile(src)?;
        check_control_materializable(&module)?;
        let rels = materialize_with_cache(&module, &self.db, self.index_cache.clone())?;
        check_constraints(&module, &rels)?;
        Ok(rels.get("output").cloned().unwrap_or_default())
    }

    /// Evaluate a query and return an arbitrary derived relation (useful
    /// for tests and tooling). Demand-driven relations cannot be fetched
    /// whole.
    pub fn eval(&self, src: &str, relation: &str) -> RelResult<Relation> {
        let module = self.compile(src)?;
        let rels = materialize_with_cache(&module, &self.db, self.index_cache.clone())?;
        Ok(rels.get(relation).cloned().unwrap_or_default())
    }

    /// Execute a transaction: evaluate, build the delta from the `insert`
    /// and `delete` control relations, check integrity constraints against
    /// the post-state, and commit (or abort, leaving the database
    /// untouched).
    pub fn transact(&mut self, src: &str) -> RelResult<TxnOutcome> {
        let module = self.compile(src)?;
        check_control_materializable(&module)?;
        let rels = materialize_with_cache(&module, &self.db, self.index_cache.clone())?;
        let delta = extract_delta(&rels)?;
        let output = rels.get("output").cloned().unwrap_or_default();

        if delta.is_empty() {
            check_constraints(&module, &rels)?;
            return Ok(TxnOutcome { output, inserted: 0, deleted: 0 });
        }

        // Apply to a candidate state and re-check constraints there: "when
        // a transaction terminates, changes are persisted, unless the
        // transaction is aborted" (§3.4). Cloning the database is cheap
        // (CoW relations); `apply` unshares only the touched relations,
        // whose generations move — so the shared index cache stays valid
        // for everything else.
        let mut candidate = self.db.clone();
        candidate.apply(&delta);
        let post = materialize_with_cache(&module, &candidate, self.index_cache.clone())?;
        check_constraints(&module, &post)?;

        let inserted: usize = delta.inserts.values().map(Vec::len).sum();
        let deleted: usize = delta.deletes.values().map(Vec::len).sum();
        self.db = candidate;
        // The touched relations' generations moved with the commit: drop
        // their pre-commit indexes now instead of waiting for a later
        // materialize run's prune. (Lookups are generation-checked, so
        // stale entries could never be *served* — this keeps them from
        // lingering, while indexes the post-state evaluation built at the
        // committed generation stay warm.)
        self.index_cache.invalidate_stale_relations(
            delta.inserts.keys().chain(delta.deletes.keys()),
            &self.db,
        );
        Ok(TxnOutcome { output, inserted, deleted })
    }
}

/// Control relations must be fully materializable: a demand-driven
/// `output` would silently evaluate to nothing.
fn check_control_materializable(module: &Module) -> RelResult<()> {
    for control in ["output", "insert", "delete"] {
        if let Some(info) = module.pred_info.get(control) {
            if let rel_sema::ir::EvalMode::Demand { bound_prefix } = info.mode {
                return Err(RelError::unsafe_expr(format!(
                    "`{control}` is not materializable: its first {bound_prefix}                      argument(s) would need to be bound externally — some rule                      cannot ground them"
                )));
            }
        }
    }
    Ok(())
}

/// Build a [`Delta`] from the `insert`/`delete` control relations: each
/// tuple is `⟨:RelName, v₁, …, vₙ⟩` (§3.4).
fn extract_delta(rels: &BTreeMap<Name, Relation>) -> RelResult<Delta> {
    let mut delta = Delta::default();
    for (control, is_insert) in [("insert", true), ("delete", false)] {
        let Some(rel) = rels.get(control) else { continue };
        for t in rel.iter() {
            let Some(Value::Symbol(target)) = t.get(0) else {
                return Err(RelError::type_err(format!(
                    "`{control}` tuples must start with a :RelationName symbol, got {t}"
                )));
            };
            let rest = Tuple::from(t.values()[1..].to_vec());
            if is_insert {
                delta.insert(target.as_ref(), rest);
            } else {
                delta.delete(target.as_ref(), rest);
            }
        }
    }
    Ok(delta)
}

/// Evaluate every integrity constraint's violation query; the first
/// non-empty one aborts.
pub fn check_constraints(module: &Module, rels: &BTreeMap<Name, Relation>) -> RelResult<()> {
    let cx = EvalCtx::new(module, rels);
    for c in &module.constraints {
        let witnesses = eval_constraint(&cx, c)?;
        if !witnesses.is_empty() {
            let rendered: Vec<String> =
                witnesses.iter().take(5).map(|t| t.to_string()).collect();
            return Err(RelError::ConstraintViolation {
                name: c.name.to_string(),
                witnesses: format!("{{{}}}", rendered.join("; ")),
            });
        }
    }
    Ok(())
}

/// Evaluate one constraint's violation query as a synthetic rule.
pub fn eval_constraint(cx: &EvalCtx<'_>, c: &ConstraintIr) -> RelResult<Relation> {
    let rule = Rule {
        pred: c.name.clone(),
        params: c.params.clone(),
        body: c.body.clone(),
        vars: c.vars.clone(),
    };
    cx.eval_rule(&rule, Env::new(rule.vars.len()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rel_core::database::figure1_database;
    use rel_core::tuple;

    fn session() -> Session {
        Session::new(figure1_database())
    }

    #[test]
    fn basic_query_output() {
        // §3.4: products whose price exceeds 30.
        let out = session()
            .query("def output(x) : exists( (y) | ProductPrice(x,y) and y > 30)")
            .unwrap();
        assert_eq!(out, Relation::from_tuples([tuple!["P4"]]));
    }

    #[test]
    fn order_with_payment() {
        // §3.1 — set semantics: "O1" appears once despite two payments.
        let out = session()
            .query("def output(y) : exists((x) | PaymentOrder(x,y))")
            .unwrap();
        assert_eq!(
            out,
            Relation::from_tuples([tuple!["O1"], tuple!["O2"], tuple!["O3"]])
        );
    }

    #[test]
    fn transact_insert_creates_relation() {
        let mut s = session();
        let outcome = s
            .transact("def insert(:ClosedOrders, x) : PaymentOrder(_, x)")
            .unwrap();
        assert_eq!(outcome.inserted, 3);
        assert_eq!(s.db().get("ClosedOrders").unwrap().len(), 3);
    }

    #[test]
    fn transact_delete() {
        let mut s = session();
        let outcome = s
            .transact("def delete(:ProductPrice, x, y) : ProductPrice(x, y) and y > 30")
            .unwrap();
        assert_eq!(outcome.deleted, 1);
        assert_eq!(s.db().get("ProductPrice").unwrap().len(), 3);
    }

    #[test]
    fn violated_constraint_aborts() {
        let mut s = session();
        let err = s
            .transact(
                "def insert(:OrderProductQuantity, x, y, z) : \
                   x = \"O9\" and y = \"P9\" and z = 1\n\
                 ic valid_products(p) requires \
                   OrderProductQuantity(_,p,_) implies ProductPrice(p,_)",
            )
            .unwrap_err();
        assert!(matches!(err, RelError::ConstraintViolation { .. }), "{err}");
        // Aborted: database unchanged.
        assert_eq!(s.db().get("OrderProductQuantity").unwrap().len(), 4);
    }

    #[test]
    fn satisfied_constraint_commits() {
        let mut s = session();
        s.transact(
            "def insert(:OrderProductQuantity, x, y, z) : \
               x = \"O9\" and y = \"P1\" and z = 1\n\
             ic valid_products(p) requires \
               OrderProductQuantity(_,p,_) implies ProductPrice(p,_)",
        )
        .unwrap();
        assert_eq!(s.db().get("OrderProductQuantity").unwrap().len(), 5);
    }

    #[test]
    fn boolean_constraint_checked() {
        let s = session();
        let err = s
            .query(
                "def output(x) : ProductPrice(x, _)\n\
                 ic impossible() requires ProductPrice(\"P1\", 11)",
            )
            .unwrap_err();
        assert!(matches!(err, RelError::ConstraintViolation { .. }), "{err}");
    }

    #[test]
    fn session_is_send_and_sync() {
        // Compile-time assertion: the evaluation core's interior state is
        // lock-based, so a session can be shared across threads.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Session>();
        assert_send_sync::<SharedIndexCache>();
        assert_send_sync::<EvalCtx<'static>>();
    }

    #[test]
    fn concurrent_queries_share_one_session() {
        // One session, many threads: every thread sees the same answer a
        // single-threaded query produces, and the shared index cache
        // survives the contention.
        let s = session();
        let expected = s
            .query("def output(x) : exists( (y) | ProductPrice(x,y) and y > 30)")
            .unwrap();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let s = &s;
                    scope.spawn(move || {
                        s.query(
                            "def output(x) : exists( (y) | ProductPrice(x,y) and y > 30)",
                        )
                        .unwrap()
                    })
                })
                .collect();
            for h in handles {
                assert_eq!(h.join().unwrap(), expected);
            }
        });
    }

    #[test]
    fn commit_invalidates_indexes_of_touched_relations() {
        let mut s = session();
        // Build an index over ProductPrice (the join binds x, indexing on
        // the bound position) and record the pre-commit generation.
        s.query("def output(y) : ProductPrice(\"P1\", y)").unwrap();
        let old_gen = s.db().get("ProductPrice").unwrap().generation();
        let pre = s.index_cache.generations_for("ProductPrice");
        assert!(
            pre.contains(&old_gen),
            "expected an index built against the pre-commit generation, got {pre:?}"
        );
        // Commit a transaction that touches ProductPrice. The module here
        // never *reads* ProductPrice through an index, so without
        // per-relation invalidation the old entry would linger.
        s.transact("def insert(:ProductPrice, x, y) : x = \"P9\" and y = 99")
            .unwrap();
        let post = s.index_cache.generations_for("ProductPrice");
        assert!(
            !post.contains(&old_gen),
            "a committed transaction must not retain an index built against \
             the pre-commit generation (left: {post:?})"
        );
        // And the next query sees the committed tuple.
        let out = s
            .query("def output(x) : exists( (y) | ProductPrice(x,y) and y > 30)")
            .unwrap();
        assert_eq!(out, Relation::from_tuples([tuple!["P4"], tuple!["P9"]]));
    }

    #[test]
    fn integer_quantities_ic_holds() {
        // §3.5 with the Figure 1 data: all quantities are integers.
        let s = session();
        s.query(
            "def output(x) : ProductPrice(x, _)\n\
             ic integer_quantities() requires \
               forall((x) | OrderProductQuantity(_,_,x) implies Int(x))",
        )
        .unwrap();
    }
}
