//! A small bounded map with true least-recently-used eviction.
//!
//! Shared by the session's compiled-module cache (ROADMAP follow-up from
//! PR 3: evict the *least recently used* entry instead of clearing the
//! whole cache at capacity) and the incremental engine's per-module
//! fixpoint cache. Recency is tracked with a per-entry [`AtomicU64`]
//! stamp from a logical clock, so a *hit* needs only a shared (read)
//! lock from callers that wrap the cache in an `RwLock` — exactly the
//! allocation-free hit path the module cache had before, now with
//! recency tracking on top.

use std::borrow::Borrow;
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};

/// A bounded `HashMap` that evicts the least-recently-used entry when
/// inserting at capacity. Reads update recency through `&self`.
#[derive(Debug, Default)]
pub(crate) struct LruMap<K, V> {
    entries: HashMap<K, LruEntry<V>>,
    clock: AtomicU64,
    cap: usize,
}

#[derive(Debug)]
struct LruEntry<V> {
    value: V,
    last_used: AtomicU64,
}

impl<K: Eq + Hash + Clone, V: Clone> LruMap<K, V> {
    /// An empty cache bounded at `cap` entries (`cap == 0` caches
    /// nothing).
    pub(crate) fn new(cap: usize) -> Self {
        LruMap { entries: HashMap::new(), clock: AtomicU64::new(0), cap }
    }

    /// Look up a key, marking it most-recently-used. `&self`: hits only
    /// need a shared lock around the map (and borrowed key forms keep the
    /// hit path allocation-free).
    pub(crate) fn get<Q>(&self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        let e = self.entries.get(key)?;
        e.last_used.store(self.tick(), Ordering::Relaxed);
        Some(e.value.clone())
    }

    /// Insert (or replace) a value as most-recently-used, evicting the
    /// least-recently-used entry first when at capacity.
    pub(crate) fn insert(&mut self, key: K, value: V) {
        if self.cap == 0 {
            return;
        }
        if !self.entries.contains_key(&key) && self.entries.len() >= self.cap {
            if let Some(oldest) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used.load(Ordering::Relaxed))
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&oldest);
            }
        }
        let stamp = self.tick();
        self.entries
            .insert(key, LruEntry { value, last_used: AtomicU64::new(stamp) });
    }

    /// Number of live entries.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is `key` cached (without touching recency)?
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn contains<Q>(&self, key: &Q) -> bool
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.entries.contains_key(key)
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recently_used_entries_survive_eviction() {
        // Fill to capacity, refresh a subset by *reading* it, then insert
        // past capacity: the un-refreshed entries are the ones evicted.
        let mut lru: LruMap<String, i32> = LruMap::new(4);
        for i in 0..4 {
            lru.insert(format!("k{i}"), i);
        }
        // Touch k0 and k2 — k1 becomes the least recently used.
        assert_eq!(lru.get(&"k0".to_string()), Some(0));
        assert_eq!(lru.get(&"k2".to_string()), Some(2));
        lru.insert("k4".to_string(), 4);
        assert_eq!(lru.len(), 4);
        assert!(!lru.contains(&"k1".to_string()), "LRU entry must be evicted");
        for k in ["k0", "k2", "k3", "k4"] {
            assert!(lru.contains(&k.to_string()), "{k} should have survived");
        }
        // And the next eviction takes k3 (never read since insertion).
        lru.insert("k5".to_string(), 5);
        assert!(!lru.contains(&"k3".to_string()));
        assert!(lru.contains(&"k0".to_string()));
    }

    #[test]
    fn replacing_a_key_does_not_evict() {
        let mut lru: LruMap<&'static str, i32> = LruMap::new(2);
        lru.insert("a", 1);
        lru.insert("b", 2);
        lru.insert("a", 3); // replacement, not growth
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.get(&"a"), Some(3));
        assert_eq!(lru.get(&"b"), Some(2));
    }

    #[test]
    fn zero_capacity_caches_nothing() {
        let mut lru: LruMap<&'static str, i32> = LruMap::new(0);
        lru.insert("a", 1);
        assert_eq!(lru.len(), 0);
        assert_eq!(lru.get(&"a"), None);
    }
}
