//! One consolidated configuration surface for every engine switch.
//!
//! Historically each mode toggle lived where its machinery lives —
//! incremental maintenance read `REL_INCREMENTAL` in
//! [`crate::incremental`], WCOJ routing read `REL_WCOJ` in
//! [`crate::eval`], the columnar layout read `REL_COLUMNAR` down in
//! `rel-core`, metrics read `REL_METRICS` in [`crate::metrics`], and the
//! fsync policy read `REL_FSYNC` in [`crate::durability`]. The switches
//! still *live* there (each module owns its mechanism), but
//! [`EngineConfig`] is the one client-facing place that names them all:
//!
//! * [`EngineConfig::from_env`] resolves every switch from the
//!   environment in one call — exactly the defaults a freshly
//!   constructed [`Session`] would see;
//! * the builder methods override individual switches;
//! * [`Session::with_config`] / [`Session::open_with`] apply the whole
//!   bundle to a session at construction time. The per-switch setters
//!   ([`Session::set_incremental`], [`Session::set_wcoj`],
//!   [`Session::set_columnar`], [`Session::set_metrics`]) remain as thin
//!   wrappers over the same switch points for runtime flips.
//!
//! ```
//! use rel_core::Database;
//! use rel_engine::{EngineConfig, Session, WcojMode};
//!
//! let cfg = EngineConfig::from_env().incremental(false).wcoj(WcojMode::Force);
//! let s = Session::with_config(Database::new(), cfg);
//! assert!(!s.incremental_enabled());
//! assert_eq!(s.wcoj_mode(), WcojMode::Force);
//! ```
//!
//! Every switch tunes scheduling, caching, observability, durability, or
//! delivery — never query semantics: results are byte-identical under
//! every configuration (held to that by the mode-matrix equivalence
//! suites).

use crate::durability::DurabilityConfig;
use crate::eval::WcojMode;
use crate::session::Session;
use crate::{incremental, metrics, watch};

/// Every engine switch, resolved. See the
/// [crate-level table](crate#environment-variables) for the
/// corresponding `REL_*` environment variables, and the module docs for
/// how this relates to the per-switch [`Session`] setters.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Incremental view maintenance (`REL_INCREMENTAL`, default on).
    /// Per-session.
    pub incremental: bool,
    /// Routing of multi-atom conjunctions through the leapfrog WCOJ
    /// kernel (`REL_WCOJ`, default [`WcojMode::Auto`]). Per-session.
    pub wcoj: WcojMode,
    /// Typed columnar storage layout (`REL_COLUMNAR`, default on).
    /// **Process-wide** — the kernels live below the session layer.
    pub columnar: bool,
    /// Hot-path metrics collection (`REL_METRICS`, default off).
    /// **Process-wide**, like [`EngineConfig::columnar`].
    pub metrics: bool,
    /// How many [`crate::WatchDelta`] batches a standing query buffers
    /// before its subscriber is considered lagging and is resynced with
    /// a snapshot batch (`REL_WATCH_BUFFER`, default
    /// [`watch::DEFAULT_WATCH_BUFFER`]). Per-session; captured per watch
    /// at registration.
    pub watch_buffer: usize,
    /// Durability tuning for [`Session::open_with`] (`REL_FSYNC` plus
    /// compaction triggers). Ignored by [`Session::with_config`], which
    /// builds ephemeral sessions.
    pub durability: DurabilityConfig,
}

impl Default for EngineConfig {
    /// Identical to [`EngineConfig::from_env`]: the switches a plain
    /// [`Session::new`] would resolve lazily, resolved eagerly.
    fn default() -> Self {
        EngineConfig::from_env()
    }
}

impl EngineConfig {
    /// Resolve every switch from the environment in one place: the
    /// configuration an unconfigured session would end up with.
    pub fn from_env() -> Self {
        EngineConfig {
            incremental: incremental::env_enabled(),
            wcoj: WcojMode::from_env(),
            columnar: rel_core::columnar_enabled(),
            metrics: metrics::enabled(),
            watch_buffer: watch::env_buffer(),
            durability: DurabilityConfig::default(),
        }
    }

    /// Override the incremental-maintenance switch (builder-style).
    pub fn incremental(mut self, on: bool) -> Self {
        self.incremental = on;
        self
    }

    /// Override the WCOJ routing mode (builder-style).
    pub fn wcoj(mut self, mode: WcojMode) -> Self {
        self.wcoj = mode;
        self
    }

    /// Override the (process-wide) columnar-layout switch (builder-style).
    pub fn columnar(mut self, on: bool) -> Self {
        self.columnar = on;
        self
    }

    /// Override the (process-wide) hot-path metrics switch (builder-style).
    pub fn metrics(mut self, on: bool) -> Self {
        self.metrics = on;
        self
    }

    /// Override the standing-query delivery buffer (builder-style;
    /// clamped to at least 1 at registration).
    pub fn watch_buffer(mut self, batches: usize) -> Self {
        self.watch_buffer = batches;
        self
    }

    /// Override the durability tuning used by [`Session::open_with`]
    /// (builder-style).
    pub fn durability(mut self, cfg: DurabilityConfig) -> Self {
        self.durability = cfg;
        self
    }

    /// Apply every switch to `session`, through the same switch points
    /// the per-switch setters use. Process-wide switches (columnar,
    /// metrics) are only written when the requested value differs from
    /// the current effective one, so applying an unmodified
    /// [`EngineConfig::from_env`] is a no-op for the rest of the process.
    pub(crate) fn apply(&self, session: &mut Session) {
        session.set_incremental(self.incremental);
        session.set_wcoj(self.wcoj);
        if session.columnar_enabled() != self.columnar {
            session.set_columnar(self.columnar);
        }
        if session.metrics_enabled() != self.metrics {
            session.set_metrics(self.metrics);
        }
        session.set_watch_buffer(self.watch_buffer);
    }
}

/// The one legacy constructor signature kept working: durability-only
/// configuration promotes to a full [`EngineConfig`] with every other
/// switch at its environment default.
impl From<DurabilityConfig> for EngineConfig {
    fn from(durability: DurabilityConfig) -> Self {
        EngineConfig::from_env().durability(durability)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rel_core::Database;

    #[test]
    fn from_env_matches_unconfigured_session() {
        let plain = Session::new(Database::new());
        let cfg = EngineConfig::from_env();
        assert_eq!(cfg.incremental, plain.incremental_enabled());
        assert_eq!(cfg.wcoj, plain.wcoj_mode());
        assert_eq!(cfg.columnar, plain.columnar_enabled());
        assert_eq!(cfg.metrics, plain.metrics_enabled());
        assert_eq!(cfg.watch_buffer, plain.watch_buffer());
    }

    #[test]
    fn builder_overrides_reach_the_session() {
        let cfg = EngineConfig::from_env()
            .incremental(false)
            .wcoj(WcojMode::Force)
            .watch_buffer(3);
        let s = Session::with_config(Database::new(), cfg);
        assert!(!s.incremental_enabled());
        assert_eq!(s.wcoj_mode(), WcojMode::Force);
        assert_eq!(s.watch_buffer(), 3);
    }

    #[test]
    fn durability_config_promotes_with_env_defaults() {
        let cfg: EngineConfig = DurabilityConfig::default().into();
        assert_eq!(cfg.incremental, incremental::env_enabled());
        assert_eq!(cfg.wcoj, WcojMode::from_env());
    }
}
