//! Process-wide metrics: named atomic counters and latency histograms.
//!
//! One static [`Registry`] (reachable via [`registry`]) holds a counter
//! for every event the engine knows how to explain — commits and aborts,
//! WAL bytes and fsyncs, cache hits and misses at every layer (module
//! cache, fixpoint cache, hash indexes, permuted tries), incremental
//! stratum classification, and join/rule kernel dispatch — plus a
//! histogram of end-to-end query latency. [`Registry::snapshot`] reads
//! the whole registry into a plain [`MetricsSnapshot`], and
//! [`MetricsSnapshot::render`] turns it into the text block `rel`'s
//! `:stats` surfaces print.
//!
//! ## The `REL_METRICS` gate
//!
//! Hot-path instrumentation (per-rule, per-join, per-cache-lookup) is
//! guarded by [`enabled`]: one relaxed atomic load and a predictable
//! branch, so the metrics-off configuration costs nothing measurable
//! (the `observability_overhead` workload in `bench_report` guards the
//! claim). The gate reads `REL_METRICS` once (`1`/`true`/`on`/`yes`
//! enable) and [`set_metrics`] overrides it process-wide at runtime.
//!
//! **Cold-path counters record unconditionally**, gate or no gate:
//! commits, aborts, WAL bytes, fsyncs, compactions, and snapshot
//! publications are per-commit events whose cost is noise next to the
//! I/O they describe — and pre-existing consumers (the group-commit
//! tests and benchmarks built on [`crate::durability::fsync_count`],
//! which is now a shim over this registry) rely on them ticking without
//! any environment setup.
//!
//! ## Monotonicity
//!
//! Counters only ever increase (there is no reset), so deltas taken by
//! concurrent readers are always well-defined; the `metrics_invariants`
//! suite pins this across randomized transaction streams.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::OnceLock;

// ---------------------------------------------------------------------------
// The gate
// ---------------------------------------------------------------------------

/// Tri-state gate: 0 = read `REL_METRICS` on first use, 1 = off, 2 = on.
static ENABLED: AtomicU8 = AtomicU8::new(0);

fn env_enabled() -> bool {
    matches!(
        std::env::var("REL_METRICS").ok().as_deref().map(str::trim),
        Some("1" | "true" | "on" | "yes")
    )
}

/// Is hot-path metrics collection on? One relaxed load + branch — the
/// off path is a branch-predictable no-op.
#[inline]
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => {
            let on = env_enabled();
            ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
            on
        }
    }
}

/// Override the `REL_METRICS` gate process-wide (it sits below the
/// session layer, like [`crate::Session::set_columnar`]'s switch).
pub fn set_metrics(on: bool) {
    ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// The `REL_SLOW_QUERY_MS` threshold, read once: queries slower than
/// this many milliseconds are evaluated under a profile sink and their
/// rendered [`crate::profile::QueryProfile`] is logged to stderr.
pub fn slow_query_ms() -> Option<u64> {
    static SLOW: OnceLock<Option<u64>> = OnceLock::new();
    *SLOW.get_or_init(|| {
        std::env::var("REL_SLOW_QUERY_MS").ok()?.trim().parse::<u64>().ok()
    })
}

// ---------------------------------------------------------------------------
// Counter
// ---------------------------------------------------------------------------

/// A monotonically increasing atomic counter (relaxed ordering: totals
/// are exact once writers quiesce, momentarily stale under concurrency).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Zero.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add 1.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

/// Bucket count: log2 buckets of microseconds. Bucket `i` holds samples
/// with `floor(log2(us)) == i` (bucket 0 also takes `us == 0`), so the
/// range spans 1 µs to ~2.3 hours with ≤2x quantile error.
pub const HIST_BUCKETS: usize = 33;

/// A lock-free log-scale latency histogram over microseconds.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Empty.
    pub const fn new() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }

    /// Record one sample of `us` microseconds.
    pub fn record_us(&self, us: u64) {
        let idx = if us == 0 { 0 } else { (63 - us.leading_zeros()) as usize };
        self.buckets[idx.min(HIST_BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Record one sample from a [`std::time::Duration`].
    pub fn record(&self, d: std::time::Duration) {
        self.record_us(d.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Read the histogram into a plain summary.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HIST_BUCKETS];
        for (b, v) in buckets.iter_mut().zip(&self.buckets) {
            *b = v.load(Ordering::Relaxed);
        }
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum_us: self.sum_us.load(Ordering::Relaxed),
            max_us: self.max_us.load(Ordering::Relaxed),
            p50_us: quantile(&buckets, count, 0.50),
            p99_us: quantile(&buckets, count, 0.99),
        }
    }
}

/// Upper bound of the bucket holding the `q`-quantile sample (≤2x the
/// true value by construction of the log2 buckets).
fn quantile(buckets: &[u64; HIST_BUCKETS], count: u64, q: f64) -> u64 {
    if count == 0 {
        return 0;
    }
    let rank = ((count as f64) * q).ceil() as u64;
    let mut seen = 0u64;
    for (i, &b) in buckets.iter().enumerate() {
        seen += b;
        if seen >= rank {
            return if i >= 63 { u64::MAX } else { (2u64 << i) - 1 };
        }
    }
    u64::MAX
}

/// A point-in-time read of one [`Histogram`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples, µs.
    pub sum_us: u64,
    /// Largest sample, µs.
    pub max_us: u64,
    /// Median (bucket upper bound), µs.
    pub p50_us: u64,
    /// 99th percentile (bucket upper bound), µs.
    pub p99_us: u64,
}

impl HistogramSnapshot {
    /// Mean sample, µs (0 when empty).
    pub fn mean_us(&self) -> u64 {
        self.sum_us.checked_div(self.count).unwrap_or(0)
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// Every named counter the engine maintains, plus the query-latency
/// histogram. All fields are monotone; read them individually or as a
/// whole via [`Registry::snapshot`].
#[derive(Debug, Default)]
pub struct Registry {
    /// Transactions committed (cold path: always counted).
    pub commits: Counter,
    /// Transactions explicitly aborted (cold path: always counted).
    pub aborts: Counter,
    /// Bytes appended to write-ahead logs (cold path: always counted).
    pub wal_bytes: Counter,
    /// fsync/fdatasync calls issued by the durability layer (cold path:
    /// always counted — [`crate::durability::fsync_count`] reads this).
    pub fsyncs: Counter,
    /// WAL-into-snapshot compactions completed (cold path).
    pub compactions: Counter,
    /// Snapshot files atomically published (cold path).
    pub snapshot_publishes: Counter,
    /// Session module-cache hits (source already compiled).
    pub module_cache_hits: Counter,
    /// Session module-cache misses (full compile).
    pub module_cache_misses: Counter,
    /// Fixpoint-cache pure reuses (snapshot unchanged: pointer bumps).
    pub fixpoint_cache_hits: Counter,
    /// Fixpoint-cache misses (no pre-state, or the snapshot moved).
    pub fixpoint_cache_misses: Counter,
    /// Hash indexes built (cache miss — including generation-stale
    /// rebuilds, which are misses, never hits).
    pub index_builds: Counter,
    /// Hash-index cache hits at the current generation.
    pub index_reuses: Counter,
    /// Permuted sorted tries built (cache miss, stale rebuilds included).
    pub trie_builds: Counter,
    /// Trie-cache hits at the current generation.
    pub trie_reuses: Counter,
    /// Strata reused by pointer bump during incremental maintenance.
    pub strata_reused: Counter,
    /// Monotone recursive strata restarted semi-naively from the
    /// previous fixpoint with delta seeds.
    pub strata_delta_restarted: Counter,
    /// Strata recomputed from scratch inside the changed cone.
    pub strata_recomputed: Counter,
    /// Conjunction groups dispatched to the leapfrog WCOJ kernel.
    pub wcoj_dispatches: Counter,
    /// Atoms dispatched to the pairwise binary-join scheduler.
    pub binary_join_dispatches: Counter,
    /// Rules executed by a fused columnar whole-rule kernel.
    pub fused_rules: Counter,
    /// Rules executed by the generic environment machinery.
    pub env_rules: Counter,
    /// Queries whose latency crossed `REL_SLOW_QUERY_MS`.
    pub slow_queries: Counter,
    /// End-to-end latency of session query evaluations, µs.
    pub query_us: Histogram,
}

impl Registry {
    const fn new() -> Self {
        Registry {
            commits: Counter::new(),
            aborts: Counter::new(),
            wal_bytes: Counter::new(),
            fsyncs: Counter::new(),
            compactions: Counter::new(),
            snapshot_publishes: Counter::new(),
            module_cache_hits: Counter::new(),
            module_cache_misses: Counter::new(),
            fixpoint_cache_hits: Counter::new(),
            fixpoint_cache_misses: Counter::new(),
            index_builds: Counter::new(),
            index_reuses: Counter::new(),
            trie_builds: Counter::new(),
            trie_reuses: Counter::new(),
            strata_reused: Counter::new(),
            strata_delta_restarted: Counter::new(),
            strata_recomputed: Counter::new(),
            wcoj_dispatches: Counter::new(),
            binary_join_dispatches: Counter::new(),
            fused_rules: Counter::new(),
            env_rules: Counter::new(),
            slow_queries: Counter::new(),
            query_us: Histogram::new(),
        }
    }

    /// Read every counter (in a fixed, documented order) plus the query
    /// histogram into a plain snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters().map(|(n, c)| (n, c.get())).collect(),
            query_us: self.query_us.snapshot(),
        }
    }

    /// `(name, counter)` pairs in snapshot order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, &Counter)> {
        [
            ("commits", &self.commits),
            ("aborts", &self.aborts),
            ("wal_bytes", &self.wal_bytes),
            ("fsyncs", &self.fsyncs),
            ("compactions", &self.compactions),
            ("snapshot_publishes", &self.snapshot_publishes),
            ("module_cache_hits", &self.module_cache_hits),
            ("module_cache_misses", &self.module_cache_misses),
            ("fixpoint_cache_hits", &self.fixpoint_cache_hits),
            ("fixpoint_cache_misses", &self.fixpoint_cache_misses),
            ("index_builds", &self.index_builds),
            ("index_reuses", &self.index_reuses),
            ("trie_builds", &self.trie_builds),
            ("trie_reuses", &self.trie_reuses),
            ("strata_reused", &self.strata_reused),
            ("strata_delta_restarted", &self.strata_delta_restarted),
            ("strata_recomputed", &self.strata_recomputed),
            ("wcoj_dispatches", &self.wcoj_dispatches),
            ("binary_join_dispatches", &self.binary_join_dispatches),
            ("fused_rules", &self.fused_rules),
            ("env_rules", &self.env_rules),
            ("slow_queries", &self.slow_queries),
        ]
        .into_iter()
    }
}

static REGISTRY: Registry = Registry::new();

/// The process-wide registry.
pub fn registry() -> &'static Registry {
    &REGISTRY
}

/// A point-in-time read of the whole registry.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every counter, in [`Registry::counters`] order.
    pub counters: Vec<(&'static str, u64)>,
    /// The query-latency histogram.
    pub query_us: HistogramSnapshot,
}

impl MetricsSnapshot {
    /// Value of a counter by name (0 if unknown — names are stable).
    pub fn get(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Render as an aligned text block (the `:stats`-style output).
    pub fn render(&self) -> String {
        let mut out = String::from("engine metrics\n");
        let width = self
            .counters
            .iter()
            .map(|(n, _)| n.len())
            .max()
            .unwrap_or(0);
        for (name, value) in &self.counters {
            out.push_str(&format!("  {name:width$}  {value}\n"));
        }
        let q = &self.query_us;
        out.push_str(&format!(
            "  {:width$}  n={} mean={}us p50<={}us p99<={}us max={}us\n",
            "query_latency",
            q.count,
            q.mean_us(),
            q.p50_us,
            q.p99_us,
            q.max_us
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_monotone_and_relaxed() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        c.incr();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::new();
        for us in [0, 1, 2, 3, 100, 1000, 1000, 1000] {
            h.record_us(us);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 8);
        assert_eq!(s.sum_us, 3106);
        assert_eq!(s.max_us, 1000);
        assert_eq!(s.mean_us(), 388);
        // Median sample is 3 (rank 4 of 8): bucket floor(log2 3)=1, upper
        // bound 3. p99 is the 1000s: bucket 9, upper bound 1023.
        assert_eq!(s.p50_us, 3);
        assert_eq!(s.p99_us, 1023);
    }

    #[test]
    fn empty_histogram_snapshot_is_zeros() {
        assert_eq!(Histogram::new().snapshot(), HistogramSnapshot::default());
    }

    #[test]
    fn snapshot_names_resolve_and_render() {
        let snap = registry().snapshot();
        assert_eq!(snap.counters.len(), 22);
        assert_eq!(snap.get("commits"), registry().commits.get());
        assert_eq!(snap.get("not_a_counter"), 0);
        let text = snap.render();
        assert!(text.contains("fsyncs"), "{text}");
        assert!(text.contains("query_latency"), "{text}");
    }

    #[test]
    fn set_metrics_overrides_the_gate() {
        set_metrics(true);
        assert!(enabled());
        set_metrics(false);
        assert!(!enabled());
    }
}
