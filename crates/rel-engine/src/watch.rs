//! Standing queries: registered once, pushed forever.
//!
//! [`crate::Session::watch`] registers a [`crate::Prepared`] query (plus
//! bound [`Params`]) as a *standing query*: the caller gets a [`Watch`]
//! handle whose channel receives one [`WatchDelta`] batch per change —
//! an initial snapshot at registration, then, after every committed
//! transaction that can affect the result, the exact added/removed
//! output rows.
//!
//! The delta computation rides the PR 4 incremental machinery instead of
//! duplicating it: each standing query's module keeps a captured fixpoint
//! in the session's incremental cache, so re-evaluating it after a commit
//! re-derives only the dependent cone of what the commit touched — and a
//! commit entirely *outside* the query's cone is detected up front by
//! [`Module::dependent_cone`] and skipped without evaluating anything
//! (the O(1) no-op path; `watch_out_of_cone_commit_is_noop` pins it).
//!
//! # Delivery contract
//!
//! * Batches carry a per-watch sequence number. Delivered sequence
//!   numbers are **gapless**: `seq` 0 is the initial snapshot, and every
//!   later batch is exactly one greater than the previous *delivered*
//!   batch.
//! * A batch with [`WatchDelta::snapshot`] set replaces the subscriber's
//!   state wholesale (`added` is the full current result, `removed` is
//!   empty); a plain batch is applied as `state − removed ∪ added`.
//! * The channel is bounded ([`crate::Session::set_watch_buffer`] /
//!   `REL_WATCH_BUFFER` batches). A subscriber that falls behind does
//!   **not** block commits and does not grow memory: once the buffer is
//!   full the watch goes *lagged* — deltas stop (no sequence numbers are
//!   consumed), and the next commit inside the cone after the subscriber
//!   drains sends one coalescing resync snapshot instead. Applying every
//!   batch as specified therefore always converges to the live result.
//! * Dropping the [`Watch`] (or the receiver disconnecting) unregisters
//!   the standing query; later commits pay nothing for it.
//!
//! Watches observe **committed** state only: registration evaluates
//! against the session's current committed database — never a
//! transaction's staged candidate (see [`crate::Transaction::watch`]) —
//! and deltas are computed after a commit installs. Direct
//! [`crate::Session::db_mut`] edits bypass commits and therefore bypass
//! watch notification, exactly as they bypass the WAL.

use crate::prepared::{Params, Prepared};
use crate::session::{check_constraints, Session};
use rel_core::{Name, RelResult, Relation};
use rel_sema::ir::Module;
use std::collections::BTreeSet;
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

/// Default bound of a watch's delivery buffer, in batches
/// (`REL_WATCH_BUFFER` overrides process-wide,
/// [`crate::Session::set_watch_buffer`] per session).
pub const DEFAULT_WATCH_BUFFER: usize = 64;

/// Resolve `REL_WATCH_BUFFER` (positive integer; anything else falls back
/// to [`DEFAULT_WATCH_BUFFER`]).
pub fn env_buffer() -> usize {
    std::env::var("REL_WATCH_BUFFER")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(DEFAULT_WATCH_BUFFER)
}

/// One pushed batch of standing-query output changes.
#[derive(Clone, Debug)]
pub struct WatchDelta {
    /// Per-watch sequence number; delivered batches are gapless from 0.
    pub seq: u64,
    /// When set, `added` is the **full current result** and the
    /// subscriber's state must be replaced, not merged: sent as the
    /// initial batch at registration (seq 0) and as the coalescing
    /// resync after the subscriber lagged.
    pub snapshot: bool,
    /// Output rows that entered the result (for a snapshot: all of it).
    pub added: Relation,
    /// Output rows that left the result (empty for a snapshot).
    pub removed: Relation,
}

impl WatchDelta {
    /// Apply this batch to a subscriber-side mirror of the result,
    /// following the delivery contract (snapshot replaces; delta merges).
    pub fn apply_to(&self, state: &Relation) -> Relation {
        if self.snapshot {
            return self.added.clone();
        }
        state.minus(&self.removed).union(&self.added)
    }

    /// Neither rows added nor removed (snapshots never count as empty).
    pub fn is_empty(&self) -> bool {
        !self.snapshot && self.added.is_empty() && self.removed.is_empty()
    }
}

/// One registered standing query, owned by the session's registry.
struct WatchEntry {
    id: u64,
    prepared: Prepared,
    params: Params,
    /// The last result successfully delivered (the subscriber's view).
    last: Relation,
    /// Sequence number the *next* delivered batch will carry.
    seq: u64,
    /// Delivery buffer full (or an evaluation failed): the next
    /// deliverable batch is a resync snapshot, not a delta.
    lagged: bool,
    tx: SyncSender<WatchDelta>,
}

/// The session's set of standing queries. Shared with every [`Watch`]
/// handle (so dropping a handle can unregister itself), but **not**
/// across session clones: a clone's database diverges immediately, and a
/// watch must only ever be fed deltas from the one database it was
/// registered against.
#[derive(Clone, Default)]
pub(crate) struct WatchRegistry {
    inner: Arc<Mutex<Watches>>,
}

#[derive(Default)]
struct Watches {
    next_id: u64,
    entries: Vec<WatchEntry>,
}

impl std::fmt::Debug for WatchRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.inner.lock().unwrap_or_else(PoisonError::into_inner).entries.len();
        f.debug_struct("WatchRegistry").field("watches", &n).finish()
    }
}

impl WatchRegistry {
    /// Number of live standing queries.
    pub(crate) fn len(&self) -> usize {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner).entries.len()
    }
}

/// A live standing query: the receiving end of the delta channel plus
/// the registration, which is cleanly removed on drop.
pub struct Watch {
    id: u64,
    rx: Receiver<WatchDelta>,
    registry: WatchRegistry,
}

impl Watch {
    /// The watch's id, unique within its session.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Block until the next batch. `None` once the session side is gone
    /// (the session was dropped) and the buffer is drained.
    pub fn recv(&self) -> Option<WatchDelta> {
        self.rx.recv().ok()
    }

    /// The next batch if one is already buffered, without blocking.
    pub fn try_recv(&self) -> Option<WatchDelta> {
        self.rx.try_recv().ok()
    }

    /// Block up to `timeout` for the next batch.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<WatchDelta> {
        self.rx.recv_timeout(timeout).ok()
    }
}

impl Drop for Watch {
    fn drop(&mut self) {
        let mut set = self.registry.inner.lock().unwrap_or_else(PoisonError::into_inner);
        set.entries.retain(|e| e.id != self.id);
    }
}

impl std::fmt::Debug for Watch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Watch").field("id", &self.id).finish()
    }
}

/// Evaluate the query against the session's committed database and
/// register it. The initial snapshot (seq 0) is already buffered on the
/// returned handle; registration errors (unbound parameters, violated
/// constraints — the same errors [`Prepared::execute_with`] raises)
/// register nothing.
pub(crate) fn register(
    session: &Session,
    registry: &WatchRegistry,
    prepared: &Prepared,
    params: &Params,
) -> RelResult<Watch> {
    let rels = prepared.materialize_with(session, params, session.db())?;
    check_constraints(prepared.module(), &rels)?;
    let initial = rels.get("output").cloned().unwrap_or_default();
    let buffer = session.watch_buffer().max(1);
    let (tx, rx) = std::sync::mpsc::sync_channel(buffer);
    // Capacity ≥ 1 and the channel is empty: the snapshot always fits.
    tx.try_send(WatchDelta {
        seq: 0,
        snapshot: true,
        added: initial.clone(),
        removed: Relation::default(),
    })
    .expect("fresh bounded channel cannot be full");
    let mut set = registry.inner.lock().unwrap_or_else(PoisonError::into_inner);
    let id = set.next_id;
    set.next_id += 1;
    set.entries.push(WatchEntry {
        id,
        prepared: prepared.clone(),
        params: params.clone(),
        last: initial,
        seq: 1,
        lagged: false,
        tx,
    });
    Ok(Watch { id, rx, registry: registry.clone() })
}

/// Fan one committed transaction's effects out to every standing query.
/// Called by [`crate::Transaction::commit`] right after the candidate is
/// installed as the session database; `touched` is the commit's set of
/// modified base relations.
pub(crate) fn notify(registry: &WatchRegistry, session: &Session, touched: &BTreeSet<Name>) {
    let mut set = registry.inner.lock().unwrap_or_else(PoisonError::into_inner);
    if set.entries.is_empty() {
        return;
    }
    set.entries.retain_mut(|entry| {
        if !entry.lagged && out_of_cone(entry.prepared.module(), touched) {
            // The commit cannot reach this query's result: O(1) skip.
            return true;
        }
        // Re-evaluate through the session's incremental cache: only the
        // dependent cone of `touched` is re-derived (the module's captured
        // fixpoint does the bookkeeping).
        let new = match entry
            .prepared
            .materialize_with(session, &entry.params, session.db())
        {
            Ok(rels) => rels.get("output").cloned().unwrap_or_default(),
            // Evaluation failure (e.g. resource pressure) must not lose
            // the subscriber silently — force a resync on the next commit.
            Err(_) => {
                entry.lagged = true;
                return true;
            }
        };
        let delta = if entry.lagged {
            WatchDelta {
                seq: entry.seq,
                snapshot: true,
                added: new.clone(),
                removed: Relation::default(),
            }
        } else {
            let added = new.minus(&entry.last);
            let removed = entry.last.minus(&new);
            if added.is_empty() && removed.is_empty() {
                // In-cone but the output didn't move (e.g. the commit
                // changed rows the projection collapses): nothing to say,
                // but remember the evaluation.
                entry.last = new;
                return true;
            }
            WatchDelta { seq: entry.seq, snapshot: false, added, removed }
        };
        match entry.tx.try_send(delta) {
            Ok(()) => {
                entry.seq += 1;
                entry.lagged = false;
                entry.last = new;
                true
            }
            // Buffer full: the subscriber is lagging. Drop this batch
            // without consuming its sequence number; once the subscriber
            // drains, the next in-cone commit coalesces everything missed
            // into one snapshot carrying this same `seq` — delivered
            // numbering stays gapless.
            Err(TrySendError::Full(_)) => {
                entry.lagged = true;
                true
            }
            // Receiver dropped without the handle's Drop having run yet
            // (e.g. mem::forget): unregister now.
            Err(TrySendError::Disconnected(_)) => false,
        }
    });
}

/// Is the commit provably outside this module's dependent cone?
/// Conservative: `dependent_cone` returns every stratum when it cannot
/// prove independence, which makes this `false` and routes through the
/// (still-correct) re-evaluation path.
fn out_of_cone(module: &Module, touched: &BTreeSet<Name>) -> bool {
    module.dependent_cone(touched).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rel_core::{tuple, Database};

    fn tc_session() -> Session {
        let mut db = Database::new();
        db.insert("E", tuple![1, 2]);
        db.insert("E", tuple![2, 3]);
        Session::new(db)
    }

    const TC: &str = "def TC(x,y) : E(x,y)\n\
                      def TC(x,y) : exists((z) | E(x,z) and TC(z,y))\n\
                      def output(x,y) : TC(x,y)";

    #[test]
    fn watch_delivers_initial_snapshot_then_deltas() {
        let mut s = tc_session();
        let q = s.prepare(TC).unwrap();
        let w = s.watch(&q, &Params::new()).unwrap();
        let first = w.try_recv().unwrap();
        assert_eq!(first.seq, 0);
        assert!(first.snapshot);
        assert_eq!(first.added.len(), 3); // (1,2) (2,3) (1,3)
        // A commit extending the chain pushes exactly the new TC pairs.
        s.transact("def insert(:E, x, y) : x = 3 and y = 4").unwrap();
        let d = w.try_recv().unwrap();
        assert_eq!(d.seq, 1);
        assert!(!d.snapshot);
        assert_eq!(d.added.len(), 3); // (3,4) (2,4) (1,4)
        assert!(d.removed.is_empty());
        // Deletions surface as removed rows.
        s.transact("def delete(:E, x, y) : x = 3 and y = 4").unwrap();
        let d = w.try_recv().unwrap();
        assert_eq!(d.seq, 2);
        assert_eq!(d.removed.len(), 3);
        assert!(d.added.is_empty());
    }

    #[test]
    fn watch_out_of_cone_commit_is_noop() {
        let mut s = tc_session();
        let q = s.prepare(TC).unwrap();
        let w = s.watch(&q, &Params::new()).unwrap();
        w.try_recv().unwrap();
        // `Unrelated` is outside TC's cone: nothing may be pushed, and
        // nothing may be evaluated (the fixpoint cache entry must be
        // byte-identically reused on the next real delta).
        s.transact("def insert(:Unrelated, x) : x = 1").unwrap();
        assert!(w.try_recv().is_none());
        s.transact("def insert(:E, x, y) : x = 0 and y = 1").unwrap();
        let d = w.try_recv().unwrap();
        assert_eq!(d.seq, 1, "skipped commits must not consume sequence numbers");
        assert_eq!(d.added.len(), 3); // (0,1) (0,2) (0,3)
    }

    #[test]
    fn lagged_watch_coalesces_into_resync_snapshot() {
        let mut s = tc_session();
        s.set_watch_buffer(1);
        let q = s.prepare(TC).unwrap();
        let w = s.watch(&q, &Params::new()).unwrap();
        // Buffer of 1 holds the initial snapshot; the next commits all
        // find it full and coalesce.
        for x in 10..14 {
            s.transact(&format!("def insert(:E, x, y) : x = {x} and y = {}", x + 1))
                .unwrap();
        }
        let first = w.try_recv().unwrap();
        assert_eq!(first.seq, 0);
        let mut state = first.apply_to(&Relation::default());
        assert!(w.try_recv().is_none(), "lagged commits must have been dropped");
        // Drained now; the next commit resyncs with one snapshot equal to
        // a fresh query, at the next gapless sequence number.
        s.transact("def insert(:E, x, y) : x = 20 and y = 21").unwrap();
        let resync = w.try_recv().unwrap();
        assert_eq!(resync.seq, 1);
        assert!(resync.snapshot);
        state = resync.apply_to(&state);
        let fresh = q.execute(&s).unwrap();
        assert_eq!(state, fresh);
    }

    #[test]
    fn dropped_watch_unregisters() {
        let mut s = tc_session();
        let q = s.prepare(TC).unwrap();
        let w = s.watch(&q, &Params::new()).unwrap();
        assert_eq!(s.watch_count(), 1);
        drop(w);
        assert_eq!(s.watch_count(), 0);
        // And commits after the drop find no registry work at all.
        s.transact("def insert(:E, x, y) : x = 3 and y = 4").unwrap();
    }

    #[test]
    fn parameterized_watch_filters_deltas() {
        let mut s = Session::new(Database::new());
        s.db_mut().insert("Price", tuple!["a", 5]);
        s.db_mut().insert("Price", tuple!["b", 50]);
        let q = s
            .prepare("def output(x, y) : Price(x, y) and y > ?min")
            .unwrap();
        let w = s.watch(&q, &Params::new().set("min", 10)).unwrap();
        assert_eq!(w.try_recv().unwrap().added.len(), 1);
        s.transact("def insert(:Price, x, y) : x = \"c\" and y = 7").unwrap();
        assert!(w.try_recv().is_none(), "below-threshold row must not push");
        s.transact("def insert(:Price, x, y) : x = \"d\" and y = 70").unwrap();
        let d = w.try_recv().unwrap();
        assert_eq!(d.added.rows::<(String, i64)>().unwrap(), vec![("d".to_string(), 70)]);
    }

    #[test]
    fn watch_errors_register_nothing() {
        let s = tc_session();
        let q = s.prepare("def output(x) : E(x, ?min)").unwrap();
        assert!(s.watch(&q, &Params::new()).is_err());
        assert_eq!(s.watch_count(), 0);
    }
}
