//! Durability configuration and crash-injection plumbing.
//!
//! This module holds the pieces shared by the write-ahead log
//! ([`crate::wal`]), snapshotting ([`crate::snapshot`]) and recovery
//! ([`crate::recovery`]):
//!
//! * [`FsyncPolicy`] — when the WAL is flushed to stable storage
//!   (`always` / `batch` / `off`), defaulting from the `REL_FSYNC`
//!   environment variable;
//! * [`DurabilityConfig`] — fsync policy plus the commit-count and
//!   log-size triggers for compaction (snapshot + log truncation);
//! * [`failpoint`] / [`FailpointFile`] — the crash-injection harness the
//!   randomized crash-recovery suite drives: a process-global byte budget
//!   that makes every durable write "die" after N bytes, exactly like a
//!   process crash mid-write. Disarmed (the default) it costs one relaxed
//!   atomic load per write.
//!
//! See the crate-level docs for the consolidated `REL_*` environment
//! variable table.

use crate::recovery::Recovered;
use crate::snapshot;
use crate::wal::WalWriter;
use rel_core::database::Delta;
use rel_core::{Database, RelResult};
use std::fs::File;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};

/// When committed WAL records are `fsync`ed to stable storage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Every commit is followed by `fdatasync` before it is acknowledged.
    /// Survives OS/power crashes at the cost of one sync per commit.
    Always,
    /// Sync every [`DurabilityConfig::fsync_batch`] commits (and at every
    /// snapshot). A power crash can lose at most one un-synced batch of
    /// the most recent commits — a *process* crash loses nothing (the
    /// bytes are in the OS page cache). The default.
    Batch,
    /// Never sync explicitly; the OS flushes on its own schedule. Fastest;
    /// still torn-write-safe on recovery (the CRC framing holds), used by
    /// the CI durability leg and the crash-injection tests.
    Off,
}

impl FsyncPolicy {
    /// The policy selected by the `REL_FSYNC` environment variable:
    /// `always`, `batch` (the default, also for unset/unknown values), or
    /// `off`/`0`/`false`/`no`.
    pub fn from_env() -> Self {
        match std::env::var("REL_FSYNC").unwrap_or_default().to_ascii_lowercase().as_str() {
            "always" => FsyncPolicy::Always,
            "off" | "0" | "false" | "no" => FsyncPolicy::Off,
            _ => FsyncPolicy::Batch,
        }
    }
}

/// Tuning knobs for a durable session. [`Default`] reads `REL_FSYNC` for
/// the sync policy and uses compaction triggers sized for a steady
/// transaction stream.
#[derive(Clone, Copy, Debug)]
pub struct DurabilityConfig {
    /// When WAL appends reach stable storage.
    pub fsync: FsyncPolicy,
    /// Under [`FsyncPolicy::Batch`]: sync after this many commits.
    pub fsync_batch: u64,
    /// Compact (write a snapshot, truncate the log) once this many
    /// commits have been appended since the last snapshot.
    pub compact_after_commits: u64,
    /// … or once the log exceeds this many bytes, whichever comes first.
    pub compact_after_bytes: u64,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        DurabilityConfig {
            fsync: FsyncPolicy::from_env(),
            fsync_batch: 32,
            compact_after_commits: 1024,
            compact_after_bytes: 16 << 20,
        }
    }
}

/// Is durable storage enabled at all? `REL_DURABILITY=0/off/false/no`
/// turns [`crate::Session::open`] into a plain ephemeral constructor —
/// the escape hatch for benchmarks and tests that take a durable code
/// path but must not touch disk.
pub fn durability_env_enabled() -> bool {
    !matches!(
        std::env::var("REL_DURABILITY").unwrap_or_default().to_ascii_lowercase().as_str(),
        "0" | "off" | "false" | "no"
    )
}

/// How many fsyncs the durability layer has issued since process start
/// (WAL syncs and snapshot syncs alike). Monotone; compare two readings
/// to count the syncs a workload performed. The counter is
/// process-global, so tests asserting on deltas must not run
/// concurrently with other fsync-heavy tests in the same binary.
///
/// Thin shim over the `fsyncs` counter of [`crate::metrics::registry`]
/// (which absorbed the old file-local static); prefer reading the
/// registry directly.
pub fn fsync_count() -> u64 {
    crate::metrics::registry().fsyncs.get()
}

pub(crate) fn note_fsync() {
    crate::metrics::registry().fsyncs.incr();
}

/// One process-wide warning when a [`crate::Session::open`] degrades to
/// ephemeral operation (missing/read-only store directory): loud enough
/// to notice, quiet enough not to spam a session loop.
static DEGRADED_WARNED: AtomicBool = AtomicBool::new(false);

pub(crate) fn warn_degraded(msg: &str) {
    if !DEGRADED_WARNED.swap(true, Ordering::Relaxed) {
        eprintln!("rel durability warning: {msg}");
    }
}

/// The durable half of a session: the WAL writer plus the compaction
/// bookkeeping that decides when the log is folded into a snapshot.
#[derive(Debug)]
pub(crate) struct DurableStore {
    dir: PathBuf,
    cfg: DurabilityConfig,
    wal: WalWriter,
    /// Sequence number covered by the newest on-disk snapshot (0 = none).
    snapshot_seq: u64,
    /// Commits appended (or replayed at recovery) since that snapshot.
    commits_since_snapshot: u64,
}

impl DurableStore {
    /// Attach to a recovered store directory for appending: truncates any
    /// torn WAL tail and positions the writer at the next sequence number.
    pub(crate) fn attach(dir: &Path, cfg: DurabilityConfig, rec: &Recovered) -> RelResult<Self> {
        let wal = WalWriter::open(dir, rec.wal_good_len, rec.next_seq(), &cfg)?;
        Ok(DurableStore {
            dir: dir.to_path_buf(),
            cfg,
            wal,
            snapshot_seq: rec.snapshot_seq,
            commits_since_snapshot: rec.replayed as u64,
        })
    }

    /// The store directory.
    pub(crate) fn dir(&self) -> &Path {
        &self.dir
    }

    /// Log one committed transaction's net delta. Returns its sequence
    /// number; on `Err` nothing was acknowledged (see
    /// [`crate::wal::WalWriter::append`] for the rollback contract).
    pub(crate) fn append_commit(&mut self, delta: &Delta) -> RelResult<u64> {
        let seq = self.wal.append(delta)?;
        self.commits_since_snapshot += 1;
        Ok(seq)
    }

    /// Log one commit's delta **without** syncing — the group-commit
    /// path. The caller must close the window with
    /// [`DurableStore::flush_group`] before acknowledging any commit
    /// appended this way.
    pub(crate) fn append_commit_deferred(&mut self, delta: &Delta) -> RelResult<u64> {
        let seq = self.wal.append_deferred(delta)?;
        self.commits_since_snapshot += 1;
        Ok(seq)
    }

    /// Apply the fsync policy once over every deferred append; returns
    /// how many commits the sync covered (see
    /// [`crate::wal::WalWriter::flush_group`]).
    pub(crate) fn flush_group(&mut self) -> RelResult<u64> {
        self.wal.flush_group()
    }

    /// Has the log grown past either compaction trigger?
    pub(crate) fn should_compact(&self) -> bool {
        self.commits_since_snapshot > 0
            && (self.commits_since_snapshot >= self.cfg.compact_after_commits
                || self.wal.len() >= self.cfg.compact_after_bytes)
    }

    /// Fold the log into a snapshot of `db` (which must contain every
    /// commit appended so far) and truncate it. Ordering is crash-safe:
    /// the snapshot is atomically published *before* the truncation, and
    /// replay skips records at or below the snapshot's sequence — a crash
    /// anywhere in between recovers the same state.
    pub(crate) fn compact(&mut self, db: &Database) -> RelResult<u64> {
        let seq = self.wal.next_seq().saturating_sub(1);
        if seq > self.snapshot_seq {
            snapshot::write(&self.dir, seq, db)?;
            self.snapshot_seq = seq;
        }
        self.wal.reset()?;
        self.commits_since_snapshot = 0;
        snapshot::prune(&self.dir, self.snapshot_seq);
        crate::metrics::registry().compactions.incr();
        Ok(self.snapshot_seq)
    }

    /// Flush acknowledged commits to stable storage now.
    pub(crate) fn sync(&mut self) -> RelResult<()> {
        self.wal.sync()
    }
}

/// Crash injection: a process-global budget of bytes the durability layer
/// may still write before "crashing".
///
/// While armed, every byte written through a [`FailpointFile`] draws the
/// budget down; the write that would exceed it persists only the bytes
/// the budget covers and then fails with a [`failpoint::crash_error`] —
/// exactly the on-disk state a process killed mid-`write(2)` leaves
/// behind. Metadata operations (`fsync`, rename, truncate) fail outright
/// once the budget is exhausted, so a "crash" also cuts compaction at
/// every stage. The crash-recovery suite arms random budgets, runs a
/// transaction stream until it dies, and proves recovery lands on a clean
/// prefix of the committed history.
pub mod failpoint {
    use super::*;

    /// Budget sentinel: disarmed (production mode — no accounting).
    const DISARMED: i64 = i64::MIN;

    static BUDGET: AtomicI64 = AtomicI64::new(DISARMED);

    /// Arm the failpoint: the durability layer may write `bytes` more
    /// bytes, then every durable operation fails.
    pub fn arm(bytes: u64) {
        BUDGET.store(bytes.min(i64::MAX as u64) as i64, Ordering::SeqCst);
    }

    /// Disarm the failpoint (production mode).
    pub fn disarm() {
        BUDGET.store(DISARMED, Ordering::SeqCst);
    }

    /// Is the failpoint currently armed?
    pub fn armed() -> bool {
        BUDGET.load(Ordering::Relaxed) != DISARMED
    }

    /// Bytes left in the armed budget (`None` when disarmed). Arming with
    /// a huge budget, running a workload, and reading what remains is how
    /// the crash suite measures a workload's total durable write volume.
    pub fn remaining() -> Option<u64> {
        let cur = BUDGET.load(Ordering::SeqCst);
        (cur != DISARMED).then(|| cur.max(0) as u64)
    }

    /// The error every exhausted-budget operation reports.
    pub fn crash_error() -> io::Error {
        io::Error::other("failpoint: injected crash")
    }

    /// Was `err` produced by the failpoint (as opposed to a real I/O
    /// failure)? Matches on the rendered message, which is stable.
    pub fn is_crash(msg: &str) -> bool {
        msg.contains("failpoint: injected crash")
    }

    /// How many of `want` bytes may be written. Draws down the budget.
    pub(crate) fn take(want: usize) -> usize {
        let mut cur = BUDGET.load(Ordering::Relaxed);
        loop {
            if cur == DISARMED {
                return want;
            }
            let allowed = cur.clamp(0, want as i64);
            match BUDGET.compare_exchange_weak(
                cur,
                cur - allowed,
                Ordering::SeqCst,
                Ordering::Relaxed,
            ) {
                Ok(_) => return allowed as usize,
                Err(now) => cur = now,
            }
        }
    }

    /// Gate a metadata operation (sync, rename, truncate): fails once the
    /// budget is exhausted.
    pub(crate) fn check_op() -> io::Result<()> {
        let cur = BUDGET.load(Ordering::Relaxed);
        if cur != DISARMED && cur <= 0 {
            return Err(crash_error());
        }
        Ok(())
    }
}

/// A [`File`] wrapper that routes every write and metadata operation
/// through the [`failpoint`] budget. The durability layer does *all* its
/// file I/O through this type, so the crash-injection suite can cut the
/// process's effective write stream at any byte.
#[derive(Debug)]
pub struct FailpointFile {
    inner: File,
}

impl FailpointFile {
    /// Wrap an open file.
    pub fn new(inner: File) -> Self {
        FailpointFile { inner }
    }

    /// Flush file *data* to stable storage (`fdatasync`).
    pub fn sync_data(&self) -> io::Result<()> {
        failpoint::check_op()?;
        self.inner.sync_data()?;
        note_fsync();
        Ok(())
    }

    /// Flush file data and metadata to stable storage (`fsync`).
    pub fn sync_all(&self) -> io::Result<()> {
        failpoint::check_op()?;
        self.inner.sync_all()?;
        note_fsync();
        Ok(())
    }

    /// Truncate (or extend) the file.
    pub fn set_len(&self, len: u64) -> io::Result<()> {
        failpoint::check_op()?;
        self.inner.set_len(len)
    }
}

impl Write for FailpointFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let allowed = failpoint::take(buf.len());
        if allowed > 0 {
            self.inner.write_all(&buf[..allowed])?;
        }
        if allowed < buf.len() {
            // The prefix is on disk — like a real torn write — and the
            // caller sees the crash.
            return Err(failpoint::crash_error());
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// `std::fs::rename` through the failpoint gate.
pub fn guarded_rename(from: &Path, to: &Path) -> io::Result<()> {
    failpoint::check_op()?;
    std::fs::rename(from, to)
}

/// `std::fs::remove_file` through the failpoint gate.
pub fn guarded_remove(path: &Path) -> io::Result<()> {
    failpoint::check_op()?;
    std::fs::remove_file(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failpoint_budget_cuts_writes_at_the_byte() {
        // Serialize against any other failpoint-using test in this binary.
        let _guard = FAILPOINT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let dir = std::env::temp_dir().join(format!("rel-fp-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.bin");
        failpoint::arm(5);
        let mut f = FailpointFile::new(File::create(&path).unwrap());
        let err = f.write_all(b"0123456789").unwrap_err();
        assert!(failpoint::is_crash(&err.to_string()), "{err}");
        drop(f);
        failpoint::disarm();
        assert_eq!(std::fs::read(&path).unwrap(), b"01234");
        // Metadata ops are also gated while exhausted.
        failpoint::arm(0);
        let f = FailpointFile::new(File::create(dir.join("t2.bin")).unwrap());
        assert!(f.sync_data().is_err());
        assert!(guarded_rename(&path, &dir.join("t3.bin")).is_err());
        failpoint::disarm();
        assert!(f.sync_data().is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disarmed_is_passthrough() {
        let _guard = FAILPOINT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        failpoint::disarm();
        assert!(!failpoint::armed());
        assert_eq!(failpoint::take(1000), 1000);
        assert!(failpoint::check_op().is_ok());
    }

    #[test]
    fn fsync_policy_default_is_batch() {
        // Cannot assert from_env here (the CI matrix sets REL_FSYNC), but
        // the config default must wire the policy through.
        let cfg = DurabilityConfig::default();
        assert!(cfg.fsync_batch > 0 && cfg.compact_after_commits > 0);
    }

    /// The failpoint budget is process-global; tests that arm it must not
    /// interleave.
    pub(super) static FAILPOINT_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
}
