//! Stratum-by-stratum materialization.
//!
//! * Non-recursive strata: one bottom-up pass per predicate.
//! * Recursive **monotone** strata: semi-naive evaluation — per iteration,
//!   each rule is evaluated once per occurrence of an SCC predicate, with
//!   that occurrence reading the Δ relation (new/full formulation; set
//!   semantics deduplicates the overlap). Δ overlays live in the ordinary
//!   relation map, so `eval_conj`'s WCOJ planner treats a Δ-focused atom
//!   like any other materialized atom — recursive strata route through
//!   the leapfrog kernel too (see [`crate::eval::WcojMode`]).
//! * Recursive **non-monotone** strata (Rel's non-stratified programs,
//!   Addendum A): partial-fixpoint (PFP) iteration — synchronously
//!   recompute every SCC predicate from the previous iterate until two
//!   consecutive iterates agree, with a divergence cap. This gives the
//!   paper's PageRank and APSP-with-negation programs their intended
//!   meaning (DESIGN.md §2.3).
//!
//! # Parallel stratum scheduling
//!
//! Strata are SCCs of the dependency graph, so strata with disjoint
//! ancestries are semantically independent — and since every stratum is
//! one SCC, independent predicates in the non-recursive part of a program
//! are themselves separate strata. [`materialize_with_threads`] walks the
//! condensation DAG (`Module::stratum_deps`) with a pool of
//! `std::thread::scope` workers: a stratum is *ready* once all of its
//! dependency strata have completed; a worker claims a ready stratum,
//! takes an O(1)-per-relation copy-on-write snapshot of the current
//! relation state, materializes the stratum against the snapshot, and
//! merges the stratum's own relations back. Because a stratum reads only
//! relations produced by its (completed) dependencies, and relations are
//! sorted sets merged into a [`BTreeMap`] keyed by name, the final state —
//! contents *and* iteration order — is byte-identical to sequential
//! evaluation no matter how the schedule interleaves.
//!
//! Worker count defaults to the available hardware parallelism and can be
//! pinned with the `REL_EVAL_THREADS` environment variable (`1` forces
//! the sequential path).

use crate::env::Env;
use crate::eval::{EvalCtx, SharedIndexCache};
use crate::profile::{StratumAction, StratumProfile};
use rel_core::{Database, Name, RelError, RelResult, Relation};
use rel_sema::ir::{AbsParam, EvalMode, Formula, Module, RExpr, Rule, Stratum};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Condvar, Mutex};

/// Iteration cap for partial-fixpoint strata.
pub const PFP_CAP: usize = 10_000;
/// Iteration cap for semi-naive strata (a safety net; monotone fixpoints
/// over finite domains terminate on their own).
pub const SEMI_NAIVE_CAP: usize = 10_000_000;

/// The reserved Δ-relation prefix used during semi-naive evaluation (and
/// by the incremental engine's input-delta overlays).
pub(crate) fn delta_name(p: &Name) -> Name {
    rel_core::name(format!("Δ{p}"))
}

/// Materialize every `Materialize`-mode predicate of the module, stratum
/// by stratum, starting from the database's base relations. Returns the
/// full relation state (EDB ∪ IDB).
pub fn materialize(module: &Module, db: &Database) -> RelResult<BTreeMap<Name, Relation>> {
    materialize_with_cache(module, db, SharedIndexCache::default())
}

/// [`materialize`] with a caller-owned index cache, so lazily built hash
/// indexes survive across fixpoint iterations *and* across materialize
/// calls (e.g. a session's repeated queries over the same base data).
/// Entries are keyed on relation generations, so stale indexes are
/// replaced automatically when a relation changes.
///
/// Uses the parallel stratum scheduler with [`eval_threads`] workers;
/// output is byte-identical to sequential evaluation.
pub fn materialize_with_cache(
    module: &Module,
    db: &Database,
    cache: SharedIndexCache,
) -> RelResult<BTreeMap<Name, Relation>> {
    materialize_with_threads(module, db, cache, eval_threads())
}

/// The scheduler's worker count: the `REL_EVAL_THREADS` environment
/// variable when set to a positive integer, otherwise (unset, empty, or
/// unparsable) the available hardware parallelism (capped at 8 — stratum
/// DAGs rarely go wider).
pub fn eval_threads() -> usize {
    std::env::var("REL_EVAL_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
                .min(8)
        })
}

/// [`materialize_with_cache`] with an explicit worker count. `threads <= 1`
/// evaluates strata sequentially in dependency order; otherwise a pool of
/// scoped worker threads walks the stratum DAG, materializing independent
/// strata concurrently. Both paths produce byte-identical relation state.
pub fn materialize_with_threads(
    module: &Module,
    db: &Database,
    cache: SharedIndexCache,
    threads: usize,
) -> RelResult<BTreeMap<Name, Relation>> {
    // CoW relations make this initial map O(#relations) pointer bumps —
    // no tuple is copied until somebody mutates a base relation.
    let mut rels: BTreeMap<Name, Relation> =
        db.iter().map(|(n, r)| (n.clone(), r.clone())).collect();
    let workers = threads.min(module.strata.len());
    // A hand-rolled module without the condensation DAG (stratum_deps
    // out of sync with strata) cannot be scheduled safely — fall back to
    // the sequential dependency-order walk. Profiled runs also go
    // sequential: per-stratum wall times overlap under the parallel
    // scheduler and would not sum to anything meaningful.
    if workers > 1
        && module.stratum_deps.len() == module.strata.len()
        && cache.profile().is_none()
    {
        materialize_parallel(module, &mut rels, &cache, workers)?;
    } else {
        for stratum in &module.strata {
            eval_stratum(module, &mut rels, stratum, &cache)?;
        }
    }
    // Keep the cache bounded for long-lived sessions: only indexes that
    // still match the final relation state (EDB + fixpoint results) can
    // be hit again; Δ-overlay and superseded-iteration indexes cannot.
    cache.prune_stale(&rels);
    Ok(rels)
}

/// Materialize one stratum against (and into) `rels`. Demand-only strata
/// are a no-op: they are evaluated lazily at call sites. Also the
/// incremental engine's "recompute this stratum from its current inputs"
/// primitive.
pub(crate) fn eval_stratum(
    module: &Module,
    rels: &mut BTreeMap<Name, Relation>,
    stratum: &Stratum,
    cache: &SharedIndexCache,
) -> RelResult<()> {
    let Some(sink) = cache.profile() else {
        return eval_stratum_inner(module, rels, stratum, cache);
    };
    let before = sink.counts();
    let start = std::time::Instant::now();
    let res = eval_stratum_inner(module, rels, stratum, cache);
    sink.push_stratum(StratumProfile {
        preds: stratum.preds.iter().map(|p| p.to_string()).collect(),
        recursive: stratum.recursive,
        action: StratumAction::Evaluated,
        wall: start.elapsed(),
        counts: sink.counts().since(&before),
    });
    res
}

fn eval_stratum_inner(
    module: &Module,
    rels: &mut BTreeMap<Name, Relation>,
    stratum: &Stratum,
    cache: &SharedIndexCache,
) -> RelResult<()> {
    let mats: Vec<&Name> = stratum
        .preds
        .iter()
        .filter(|p| {
            matches!(
                module.pred_info.get(*p).map(|i| &i.mode),
                Some(EvalMode::Materialize) | None
            )
        })
        .collect();
    if mats.is_empty() {
        return Ok(()); // demand-only stratum: evaluated lazily at call sites
    }
    if stratum.recursive && mats.len() != stratum.preds.len() {
        return Err(RelError::Stratify(format!(
            "stratum {:?} mixes materializable and demand-driven predicates \
             in one recursive component",
            stratum.preds
        )));
    }
    if !stratum.recursive {
        let p = mats[0];
        let derived = {
            let cx = EvalCtx::with_cache(module, rels, cache.clone());
            eval_pred_once(&cx, module, p)?
        };
        rels.entry(p.clone()).or_default().absorb(&derived);
        Ok(())
    } else if stratum.monotone {
        semi_naive(module, rels, &stratum.preds, cache)
    } else {
        pfp(module, rels, &stratum.preds, cache)
    }
}

/// Shared scheduler state: the growing relation map plus the DAG
/// bookkeeping, all under one mutex paired with a condvar.
struct SchedState {
    rels: BTreeMap<Name, Relation>,
    /// Unsatisfied-dependency count per stratum.
    indegree: Vec<usize>,
    /// Strata whose dependencies have all completed, not yet claimed.
    ready: BTreeSet<usize>,
    /// Strata that can never run: a (transitive) dependency errored.
    abandoned: Vec<bool>,
    /// Strata not yet completed, errored, or abandoned. The scheduler
    /// runs until this hits zero: evaluation *continues* past an error
    /// for every stratum whose ancestry is error-free, so the minimum
    /// errored index below is deterministic.
    outstanding: usize,
    /// First error by *stratum index* (not discovery time). Because all
    /// strata outside an errored stratum's cone still run, the minimum
    /// index here is exactly the error the sequential walk reports (all
    /// strata before it succeed — deterministically — in both modes).
    error: Option<(usize, RelError)>,
    /// A worker panicked: stop claiming work so the scope can unwind.
    halt: bool,
}

/// Walk the stratum DAG with `workers` scoped threads. Each worker claims
/// a ready stratum, snapshots the relation state (O(1) CoW clones),
/// materializes the stratum against the snapshot, and merges the
/// stratum's own relations back under the lock in a single step —
/// dependents only become ready after the merge, so every stratum reads
/// fully materialized dependencies.
fn materialize_parallel(
    module: &Module,
    rels: &mut BTreeMap<Name, Relation>,
    cache: &SharedIndexCache,
    workers: usize,
) -> RelResult<()> {
    let n = module.strata.len();
    debug_assert_eq!(module.stratum_deps.len(), n, "module missing stratum DAG");
    // Reverse edges: dependents[d] = strata unblocked by d's completion.
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut indegree = vec![0usize; n];
    for (i, deps) in module.stratum_deps.iter().enumerate() {
        indegree[i] = deps.len();
        for &d in deps {
            dependents[d].push(i);
        }
    }
    let ready: BTreeSet<usize> =
        indegree.iter().enumerate().filter(|(_, &d)| d == 0).map(|(i, _)| i).collect();
    let state = Mutex::new(SchedState {
        rels: std::mem::take(rels),
        indegree,
        ready,
        abandoned: vec![false; n],
        outstanding: n,
        error: None,
        halt: false,
    });
    let work_available = Condvar::new();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let lock = |caller: &str| {
                    state
                        .lock()
                        .unwrap_or_else(|_| panic!("scheduler mutex poisoned in {caller}"))
                };
                loop {
                    // Claim a ready stratum and snapshot the relation state.
                    let (idx, mut snapshot) = {
                        let mut st = lock("claim");
                        loop {
                            if st.halt || st.outstanding == 0 {
                                return;
                            }
                            if let Some(&idx) = st.ready.iter().next() {
                                st.ready.remove(&idx);
                                break (idx, st.rels.clone());
                            }
                            st = work_available
                                .wait(st)
                                .unwrap_or_else(|_| panic!("scheduler mutex poisoned in wait"));
                        }
                    };
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        eval_stratum(module, &mut snapshot, &module.strata[idx], cache)
                    }));
                    let mut st = lock("merge");
                    match result {
                        Ok(Ok(())) => {
                            // Merge only this stratum's relations: everything
                            // else in the snapshot is either shared with the
                            // global map already or scratch (Δ overlays are
                            // removed by the fixpoint loops on success).
                            for p in &module.strata[idx].preds {
                                if let Some(r) = snapshot.remove(p) {
                                    st.rels.insert(p.clone(), r);
                                }
                            }
                            st.outstanding -= 1;
                            for &dep in &dependents[idx] {
                                st.indegree[dep] -= 1;
                                if st.indegree[dep] == 0 && !st.abandoned[dep] {
                                    st.ready.insert(dep);
                                }
                            }
                        }
                        Ok(Err(e)) => {
                            // Record the error of the *earliest* stratum and
                            // abandon this stratum's cone; everything outside
                            // it keeps evaluating, so the minimum errored
                            // index — the error the sequential walk reports —
                            // is always reached regardless of timing.
                            if !matches!(&st.error, Some((i, _)) if *i <= idx) {
                                st.error = Some((idx, e));
                            }
                            st.outstanding -= 1;
                            let mut stack = vec![idx];
                            while let Some(s) = stack.pop() {
                                for &dep in &dependents[s] {
                                    if !st.abandoned[dep] {
                                        st.abandoned[dep] = true;
                                        st.outstanding -= 1;
                                        stack.push(dep);
                                    }
                                }
                            }
                        }
                        Err(payload) => {
                            // Stop the other workers, then re-raise: the
                            // scope's join propagates the panic out of
                            // materialize (same observable behavior as the
                            // sequential walk panicking).
                            st.halt = true;
                            drop(st);
                            work_available.notify_all();
                            std::panic::resume_unwind(payload);
                        }
                    }
                    drop(st);
                    work_available.notify_all();
                }
            });
        }
    });

    let state = state.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner);
    let SchedState { rels: final_rels, error, outstanding, .. } = state;
    *rels = final_rels;
    if let Some((_, e)) = error {
        return Err(e);
    }
    debug_assert_eq!(outstanding, 0, "scheduler finished with unevaluated strata");
    Ok(())
}

/// Evaluate all rules of one predicate once.
pub(crate) fn eval_pred_once(cx: &EvalCtx<'_>, module: &Module, pred: &Name) -> RelResult<Relation> {
    let mut out = Relation::new();
    for rule in module.rules_for(pred) {
        out.absorb(&cx.eval_rule(rule, Env::new(rule.vars.len()))?);
    }
    Ok(out)
}

/// Semi-naive evaluation of a monotone recursive stratum.
fn semi_naive(
    module: &Module,
    rels: &mut BTreeMap<Name, Relation>,
    preds: &[Name],
    cache: &SharedIndexCache,
) -> RelResult<()> {
    let variants = scc_delta_variants(module, preds);

    // Iteration 0: full evaluation (SCC relations start as their EDB
    // contents, typically empty).
    let mut delta: BTreeMap<Name, Relation> = BTreeMap::new();
    {
        let cx = EvalCtx::with_cache(module, rels, cache.clone());
        for p in preds {
            let mut d = eval_pred_once(&cx, module, p)?;
            if let Some(existing) = rels.get(p) {
                d.absorb(existing);
            }
            delta.insert(p.clone(), d);
        }
    }
    for p in preds {
        let d = delta[p].clone(); // O(1): CoW handle
        rels.insert(p.clone(), d);
    }

    semi_naive_loop(module, rels, preds, cache, &variants, delta)
}

/// Pre-compute the Δ-focused rule variants of an SCC: for every rule, one
/// variant per occurrence of an SCC predicate, that occurrence reading the
/// Δ relation.
pub(crate) fn scc_delta_variants(module: &Module, preds: &[Name]) -> BTreeMap<Name, Vec<Rule>> {
    let scc: BTreeSet<&Name> = preds.iter().collect();
    let mut variants: BTreeMap<Name, Vec<Rule>> = BTreeMap::new();
    for p in preds {
        let mut vs = Vec::new();
        for rule in module.rules_for(p) {
            let n = count_scc_refs(rule, &scc);
            for focus in 0..n {
                vs.push(delta_variant(rule, &scc, focus));
            }
        }
        variants.insert(p.clone(), vs);
    }
    variants
}

/// The semi-naive iteration proper: given each SCC relation already
/// holding its accumulated value in `rels` and the current per-predicate
/// Δ sets, iterate to the fixpoint. Callers differ only in how the first
/// Δ was produced — full evaluation ([`semi_naive`] iteration 0) or
/// input-delta seeding from a previous fixpoint (the incremental engine's
/// restart, [`crate::incremental`]).
pub(crate) fn semi_naive_loop(
    module: &Module,
    rels: &mut BTreeMap<Name, Relation>,
    preds: &[Name],
    cache: &SharedIndexCache,
    variants: &BTreeMap<Name, Vec<Rule>>,
    mut delta: BTreeMap<Name, Relation>,
) -> RelResult<()> {
    let sink = cache.profile();
    for _iter in 0..SEMI_NAIVE_CAP {
        if delta.values().all(Relation::is_empty) {
            // Remove Δ overlays.
            for p in preds {
                rels.remove(&delta_name(p));
            }
            return Ok(());
        }
        if let Some(sink) = &sink {
            sink.note_iteration();
        }
        // Install Δ overlays — O(1) CoW clones, not deep copies.
        for p in preds {
            rels.insert(delta_name(p), delta[p].clone());
        }
        let mut new_delta: BTreeMap<Name, Relation> = BTreeMap::new();
        {
            let cx = EvalCtx::with_cache(module, rels, cache.clone());
            for p in preds {
                let mut fresh = Relation::new();
                for rule in &variants[p] {
                    fresh.absorb(&cx.eval_rule(rule, Env::new(rule.vars.len()))?);
                }
                // Δ = fresh ∖ current without copying the (large)
                // accumulated relation.
                if let Some(current) = rels.get(p) {
                    fresh.minus_in_place(current);
                }
                new_delta.insert(p.clone(), fresh);
            }
        }
        for p in preds {
            let d = &new_delta[p];
            if !d.is_empty() {
                rels.get_mut(p).expect("inserted above").absorb(d);
            }
        }
        delta = new_delta;
    }
    Err(RelError::Divergent {
        relation: preds[0].to_string(),
        iterations: SEMI_NAIVE_CAP,
    })
}

/// Partial-fixpoint evaluation of a non-monotone recursive stratum.
fn pfp(
    module: &Module,
    rels: &mut BTreeMap<Name, Relation>,
    preds: &[Name],
    cache: &SharedIndexCache,
) -> RelResult<()> {
    // Previous iterate, starting from the EDB contents (usually empty).
    // All snapshots below are O(1) CoW clones.
    let mut prev: BTreeMap<Name, Relation> = preds
        .iter()
        .map(|p| (p.clone(), rels.get(p).cloned().unwrap_or_default()))
        .collect();
    for p in preds {
        rels.insert(p.clone(), prev[p].clone());
    }
    let sink = cache.profile();
    for _iter in 0..PFP_CAP {
        if let Some(sink) = &sink {
            sink.note_iteration();
        }
        let mut next: BTreeMap<Name, Relation> = BTreeMap::new();
        {
            let cx = EvalCtx::with_cache(module, rels, cache.clone());
            for p in preds {
                next.insert(p.clone(), eval_pred_once(&cx, module, p)?);
            }
        }
        if converged(&prev, &next) {
            return Ok(());
        }
        for p in preds {
            rels.insert(p.clone(), next[p].clone());
        }
        prev = next;
    }
    Err(RelError::Divergent {
        relation: preds[0].to_string(),
        iterations: PFP_CAP,
    })
}

/// Have two PFP iterates converged? Checked per predicate with cheap
/// short-circuits — shared storage / equal generation, then length, then
/// the cached content fingerprint — before any element-wise comparison.
fn converged(prev: &BTreeMap<Name, Relation>, next: &BTreeMap<Name, Relation>) -> bool {
    debug_assert_eq!(prev.len(), next.len());
    prev.iter().all(|(p, a)| {
        let b = &next[p];
        a.len() == b.len() && a.fingerprint() == b.fingerprint() && a == b
    })
}

// ----------------------------------------------------------------------
// Δ-variant rewriting
// ----------------------------------------------------------------------

/// Count references to SCC predicates in a rule — a read-only walk, no
/// clone of the rule.
pub fn count_scc_refs(rule: &Rule, scc: &BTreeSet<&Name>) -> usize {
    let mut n = 0;
    visit_rule(rule, &mut |p| {
        if scc.contains(p) {
            n += 1;
        }
    });
    n
}

/// Apply `f` to every predicate reference in the rule, read-only, in the
/// same traversal order as the internal `map_rule` rewriter. Delegates to
/// the shared IR visitor ([`rel_sema::ir::visit_rule_preds`]) — one
/// traversal serves dependency analysis here and parameter collection in
/// `rel-sema`.
pub fn visit_rule(rule: &Rule, f: &mut impl FnMut(&Name)) {
    rel_sema::ir::visit_rule_preds(rule, f);
}

/// Produce the rule variant whose `focus`-th SCC reference reads the Δ
/// relation.
pub fn delta_variant(rule: &Rule, scc: &BTreeSet<&Name>, focus: usize) -> Rule {
    let mut out = rule.clone();
    let mut i = 0;
    map_rule(&mut out, &mut |p| {
        if scc.contains(p) {
            let name = if i == focus { delta_name(p) } else { p.clone() };
            i += 1;
            name
        } else {
            p.clone()
        }
    });
    out
}

/// Apply `f` to every predicate reference in the rule, in a fixed
/// traversal order.
fn map_rule(rule: &mut Rule, f: &mut impl FnMut(&Name) -> Name) {
    for p in &mut rule.params {
        if let AbsParam::In(_, dom) = p {
            map_rexpr(dom, f);
        }
    }
    map_rexpr(&mut rule.body, f);
}

fn map_formula(x: &mut Formula, f: &mut impl FnMut(&Name) -> Name) {
    match x {
        Formula::True | Formula::False => {}
        Formula::Conj(items) | Formula::Disj(items) => {
            for i in items {
                map_formula(i, f);
            }
        }
        Formula::Not(inner) => map_formula(inner, f),
        Formula::Atom(a) => a.pred = f(&a.pred),
        Formula::DynAtom { rel, .. } => map_rexpr(rel, f),
        Formula::Cmp { lhs, rhs, .. } => {
            map_rexpr(lhs, f);
            map_rexpr(rhs, f);
        }
        Formula::Member { of, .. } => map_rexpr(of, f),
        Formula::Exists { body, .. } => map_formula(body, f),
        Formula::OfExpr(e) => map_rexpr(e, f),
    }
}

fn map_rexpr(x: &mut RExpr, f: &mut impl FnMut(&Name) -> Name) {
    match x {
        RExpr::Pred(p) => *p = f(p),
        RExpr::PApp { pred, .. } => *pred = f(pred),
        RExpr::DynPApp { rel, .. } => map_rexpr(rel, f),
        RExpr::Product(es) | RExpr::Union(es) => {
            for e in es {
                map_rexpr(e, f);
            }
        }
        RExpr::Singleton(_) => {}
        RExpr::Where { body, cond } => {
            map_rexpr(body, f);
            map_formula(cond, f);
        }
        RExpr::Abstract { params, body, .. } => {
            for p in params.iter_mut() {
                if let AbsParam::In(_, dom) = p {
                    map_rexpr(dom, f);
                }
            }
            map_rexpr(body, f);
        }
        RExpr::Reduce { op, input, .. } => {
            map_rexpr(op, f);
            map_rexpr(input, f);
        }
        RExpr::BuiltinApp { args, .. } => {
            for a in args {
                map_rexpr(a, f);
            }
        }
        RExpr::DotJoin(a, b) | RExpr::LeftOverride(a, b) => {
            map_rexpr(a, f);
            map_rexpr(b, f);
        }
        RExpr::OfFormula(inner) => map_formula(inner, f),
    }
}

/// Evaluate *naively* (no deltas): used by the naive-vs-semi-naive
/// ablation benchmark (E4).
pub fn materialize_naive(module: &Module, db: &Database) -> RelResult<BTreeMap<Name, Relation>> {
    let mut rels: BTreeMap<Name, Relation> =
        db.iter().map(|(n, r)| (n.clone(), r.clone())).collect();
    for stratum in &module.strata {
        let mats: Vec<&Name> = stratum
            .preds
            .iter()
            .filter(|p| {
                matches!(
                    module.pred_info.get(*p).map(|i| &i.mode),
                    Some(EvalMode::Materialize) | None
                )
            })
            .collect();
        if mats.is_empty() {
            continue;
        }
        if !stratum.recursive {
            let p = mats[0];
            let derived = {
                let cx = EvalCtx::new(module, &rels);
                eval_pred_once(&cx, module, p)?
            };
            rels.entry(p.clone()).or_default().absorb(&derived);
            continue;
        }
        if !stratum.monotone {
            pfp(module, &mut rels, &stratum.preds, &SharedIndexCache::default())?;
            continue;
        }
        // Naive: re-derive everything until nothing changes.
        for p in &stratum.preds {
            rels.entry(p.clone()).or_default();
        }
        for _ in 0..SEMI_NAIVE_CAP {
            let mut changed = false;
            let mut next: BTreeMap<Name, Relation> = BTreeMap::new();
            {
                let cx = EvalCtx::new(module, &rels);
                for p in &stratum.preds {
                    next.insert(p.clone(), eval_pred_once(&cx, module, p)?);
                }
            }
            for p in &stratum.preds {
                let added = rels.get_mut(p).expect("seeded").absorb(&next[p]);
                changed |= added > 0;
            }
            if !changed {
                break;
            }
        }
    }
    Ok(rels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rel_core::tuple;

    fn edge_db() -> Database {
        let mut db = Database::new();
        for (a, b) in [(1, 2), (2, 3), (3, 4)] {
            db.insert("E", tuple![a, b]);
        }
        db
    }

    #[test]
    fn transitive_closure_semi_naive() {
        let module = rel_sema::compile(
            "def TC(x,y) : E(x,y)\n\
             def TC(x,y) : exists((z) | E(x,z) and TC(z,y))",
        )
        .unwrap();
        let rels = materialize(&module, &edge_db()).unwrap();
        let tc = &rels[&rel_core::name("TC")];
        assert_eq!(tc.len(), 6); // 1→2,1→3,1→4,2→3,2→4,3→4
        assert!(tc.contains(&tuple![1, 4]));
        assert!(!tc.contains(&tuple![4, 1]));
    }

    #[test]
    fn naive_matches_semi_naive() {
        let module = rel_sema::compile(
            "def TC(x,y) : E(x,y)\n\
             def TC(x,y) : exists((z) | E(x,z) and TC(z,y))",
        )
        .unwrap();
        let a = materialize(&module, &edge_db()).unwrap();
        let b = materialize_naive(&module, &edge_db()).unwrap();
        assert_eq!(a[&rel_core::name("TC")], b[&rel_core::name("TC")]);
    }

    #[test]
    fn nonlinear_recursion() {
        // TC via doubling: TC(x,y) :- TC(x,z), TC(z,y).
        let module = rel_sema::compile(
            "def TC(x,y) : E(x,y)\n\
             def TC(x,y) : exists((z) | TC(x,z) and TC(z,y))",
        )
        .unwrap();
        let rels = materialize(&module, &edge_db()).unwrap();
        assert_eq!(rels[&rel_core::name("TC")].len(), 6);
    }

    #[test]
    fn stratified_negation() {
        let module = rel_sema::compile(
            "def Reach(x) : Start(x)\n\
             def Reach(y) : exists((x) | Reach(x) and E(x,y))\n\
             def Unreach(x) : Node(x) and not Reach(x)",
        )
        .unwrap();
        let mut db = edge_db();
        db.insert("Start", tuple![1]);
        for n in 1..=5 {
            db.insert("Node", tuple![n]);
        }
        let rels = materialize(&module, &db).unwrap();
        assert_eq!(rels[&rel_core::name("Reach")].len(), 4);
        assert_eq!(
            rels[&rel_core::name("Unreach")],
            Relation::from_tuples([tuple![5]])
        );
    }

    #[test]
    fn pfp_win_move_game() {
        // Win(x) :- Move(x,y), not Win(y) — the classic non-stratified
        // program; on an acyclic game graph PFP reaches the unique fixpoint.
        let module = rel_sema::compile(
            "def Win(x) : exists((y) | Move(x,y) and not Win(y))",
        )
        .unwrap();
        let mut db = Database::new();
        for (a, b) in [(1, 2), (2, 3), (3, 4)] {
            db.insert("Move", tuple![a, b]);
        }
        let rels = materialize(&module, &db).unwrap();
        // 4 has no moves: lost. 3 wins (→4). 2 loses (only →3 wins).
        // 1 wins (→2 loses).
        assert_eq!(
            rels[&rel_core::name("Win")],
            Relation::from_tuples([tuple![1], tuple![3]])
        );
    }

    #[test]
    fn delta_variant_rewrites_one_occurrence() {
        let module = rel_sema::compile(
            "def TC(x,y) : exists((z) | TC(x,z) and TC(z,y))",
        )
        .unwrap();
        let rule = &module.rules_for("TC")[0];
        let tc = rel_core::name("TC");
        let scc: BTreeSet<&Name> = [&tc].into_iter().collect();
        assert_eq!(count_scc_refs(rule, &scc), 2);
        let v0 = delta_variant(rule, &scc, 0);
        let v1 = delta_variant(rule, &scc, 1);
        assert_ne!(v0, v1);
        let refs = |r: &Rule| {
            let mut names = Vec::new();
            visit_rule(r, &mut |p| names.push(p.to_string()));
            names
        };
        assert!(refs(&v0).contains(&"ΔTC".to_string()));
        assert!(refs(&v1).contains(&"ΔTC".to_string()));
    }

    #[test]
    fn visit_rule_matches_map_rule_order() {
        let module = rel_sema::compile(
            "def P(x,y) : exists((z) | E(x,z) and (Q(z,y) or not R(z)) \
             and S[z](y))",
        )
        .unwrap();
        for rule in module.rules.values().flatten() {
            let mut visited = Vec::new();
            visit_rule(rule, &mut |p| visited.push(p.clone()));
            let mut mapped = Vec::new();
            map_rule(&mut rule.clone(), &mut |p| {
                mapped.push(p.clone());
                p.clone()
            });
            assert_eq!(visited, mapped, "traversal orders diverged");
        }
    }

    #[test]
    fn materialize_shares_edb_storage() {
        // The initial relation map is built from O(1) CoW clones: a base
        // relation the program never mutates still shares storage with
        // the database after materialization.
        let module = rel_sema::compile(
            "def TC(x,y) : E(x,y)\n\
             def TC(x,y) : exists((z) | E(x,z) and TC(z,y))",
        )
        .unwrap();
        let db = edge_db();
        let rels = materialize(&module, &db).unwrap();
        let e = rels.get(&rel_core::name("E")).expect("EDB relation present");
        assert!(
            e.shares_storage(db.get("E").unwrap()),
            "EDB relation was deep-copied into the fixpoint state"
        );
        assert_eq!(e.generation(), db.get("E").unwrap().generation());
    }

    #[test]
    fn iteration_order_is_deterministic_across_strategies() {
        // The same fixpoint reached semi-naively, naively, or twice in a
        // row yields the identical tuple sequence, not just the same set.
        let module = rel_sema::compile(
            "def TC(x,y) : E(x,y)\n\
             def TC(x,y) : exists((z) | E(x,z) and TC(z,y))",
        )
        .unwrap();
        let db = edge_db();
        let order = |rels: &BTreeMap<Name, Relation>| -> Vec<rel_core::Tuple> {
            rels[&rel_core::name("TC")].iter().cloned().collect()
        };
        let a = order(&materialize(&module, &db).unwrap());
        let b = order(&materialize(&module, &db).unwrap());
        let c = order(&materialize_naive(&module, &db).unwrap());
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn parallel_scheduler_matches_sequential() {
        // Mixed shapes: two independent TCs, a negation layer, and a sink.
        let module = rel_sema::compile(
            "def TC(x,y) : E(x,y)\n\
             def TC(x,y) : exists((z) | E(x,z) and TC(z,y))\n\
             def RC(x,y) : E(y,x)\n\
             def RC(x,y) : exists((z) | E(z,x) and RC(z,y))\n\
             def Asym(x,y) : TC(x,y) and not RC(x,y)\n\
             def output(x,y) : Asym(x,y)",
        )
        .unwrap();
        let db = edge_db();
        let seq = materialize_with_threads(&module, &db, SharedIndexCache::default(), 1)
            .unwrap();
        let par = materialize_with_threads(&module, &db, SharedIndexCache::default(), 4)
            .unwrap();
        assert_eq!(seq.len(), par.len());
        for (name, rel) in &seq {
            let other = &par[name];
            let a: Vec<_> = rel.iter().cloned().collect();
            let b: Vec<_> = other.iter().cloned().collect();
            assert_eq!(a, b, "relation {name} diverged under the parallel scheduler");
        }
    }

    #[test]
    fn parallel_scheduler_propagates_errors() {
        // Win/Move over a 3-cycle oscillates under PFP. A second,
        // healthy stratum keeps the module multi-stratum so workers=4
        // actually takes the parallel path (a single-stratum module
        // falls back to the sequential walk); a dependent of the
        // divergent stratum exercises cone abandonment — the scheduler
        // must terminate with the divergence error, not hang on the
        // unreachable dependent.
        let module = rel_sema::compile(
            "def Win(x) : exists((y) | Move(x,y) and not Win(y))\n\
             def Selfish(x) : Move(x, x)\n\
             def Blocked(x) : Win(x) and Selfish(x)",
        )
        .unwrap();
        assert!(module.strata.len() >= 3, "test needs a multi-stratum module");
        let mut db = Database::new();
        for (a, b) in [(1, 2), (2, 3), (3, 1)] {
            db.insert("Move", tuple![a, b]);
        }
        for workers in [1usize, 4] {
            let err =
                materialize_with_threads(&module, &db, SharedIndexCache::default(), workers)
                    .unwrap_err();
            assert!(matches!(err, RelError::Divergent { .. }), "workers={workers}: {err}");
        }
    }

    #[test]
    fn parallel_scheduler_reports_earliest_stratum_error() {
        // Two *independent* divergent strata: whichever finishes failing
        // first in wall-clock time, the scheduler must keep evaluating
        // the rest of the DAG and report the error of the earliest
        // stratum — exactly what the sequential walk surfaces.
        let module = rel_sema::compile(
            "def WinA(x) : exists((y) | MoveA(x,y) and not WinA(y))\n\
             def WinB(x) : exists((y) | MoveB(x,y) and not WinB(y))\n\
             def Both(x) : WinA(x) and WinB(x)",
        )
        .unwrap();
        assert!(module.strata.len() >= 3);
        let mut db = Database::new();
        for (a, b) in [(1, 2), (2, 3), (3, 1)] {
            db.insert("MoveA", tuple![a, b]);
            db.insert("MoveB", tuple![a, b]);
        }
        let ia = module.pred_info[&rel_core::name("WinA")].stratum;
        let ib = module.pred_info[&rel_core::name("WinB")].stratum;
        assert_ne!(ia, ib);
        let expected = if ia < ib { "WinA" } else { "WinB" };
        for workers in [1usize, 2, 4] {
            let err =
                materialize_with_threads(&module, &db, SharedIndexCache::default(), workers)
                    .unwrap_err();
            match err {
                RelError::Divergent { ref relation, .. } => assert_eq!(
                    relation, expected,
                    "workers={workers}: reported the wrong stratum's error"
                ),
                other => panic!("workers={workers}: expected divergence, got {other}"),
            }
        }
    }

    #[test]
    fn wcoj_delta_variants_match_binary_in_recursive_strata() {
        // A 3-atom recursive body: semi-naive evaluation rewrites one
        // occurrence per variant to the Δ relation, and the WCOJ planner
        // must pick the rewritten atom group up exactly like any other
        // materialized relation (Δ overlays live in the same rels map).
        use crate::eval::WcojMode;
        let module = rel_sema::compile(
            "def P(x,y) : E(x,y)\n\
             def P(x,y) : exists((z, w) | E(x,z) and P(z,w) and E(w,y))",
        )
        .unwrap();
        let mut db = Database::new();
        for (a, b) in [(1, 2), (2, 3), (3, 4), (4, 2), (2, 5)] {
            db.insert("E", tuple![a, b]);
        }
        let off = materialize_with_threads(
            &module,
            &db,
            SharedIndexCache::with_wcoj(WcojMode::Off),
            1,
        )
        .unwrap();
        let cache = SharedIndexCache::with_wcoj(WcojMode::Force);
        let forced = materialize_with_threads(&module, &db, cache.clone(), 1).unwrap();
        let p = rel_core::name("P");
        let a: Vec<_> = off[&p].iter().cloned().collect();
        let b: Vec<_> = forced[&p].iter().cloned().collect();
        assert_eq!(a, b, "WCOJ diverged from binary joins in a recursive stratum");
        assert!(
            cache.wcoj_join_count() > 1,
            "expected leapfrog joins across semi-naive iterations, got {}",
            cache.wcoj_join_count()
        );
    }

    #[test]
    fn pfp_convergence_short_circuit_is_sound() {
        // Two maps that differ only in content (same lengths) must not be
        // declared converged.
        let a: BTreeMap<Name, Relation> = [(
            rel_core::name("P"),
            Relation::from_tuples([tuple![1]]),
        )]
        .into_iter()
        .collect();
        let b: BTreeMap<Name, Relation> = [(
            rel_core::name("P"),
            Relation::from_tuples([tuple![2]]),
        )]
        .into_iter()
        .collect();
        assert!(!converged(&a, &b));
        assert!(converged(&a, &a.clone()));
    }
}
