//! Stratum-by-stratum materialization.
//!
//! * Non-recursive strata: one bottom-up pass per predicate.
//! * Recursive **monotone** strata: semi-naive evaluation — per iteration,
//!   each rule is evaluated once per occurrence of an SCC predicate, with
//!   that occurrence reading the Δ relation (new/full formulation; set
//!   semantics deduplicates the overlap).
//! * Recursive **non-monotone** strata (Rel's non-stratified programs,
//!   Addendum A): partial-fixpoint (PFP) iteration — synchronously
//!   recompute every SCC predicate from the previous iterate until two
//!   consecutive iterates agree, with a divergence cap. This gives the
//!   paper's PageRank and APSP-with-negation programs their intended
//!   meaning (DESIGN.md §2.3).

use crate::env::Env;
use crate::eval::{EvalCtx, SharedIndexCache};
use rel_core::{Database, Name, RelError, RelResult, Relation};
use rel_sema::ir::{AbsParam, EvalMode, Formula, Module, RExpr, Rule};
use std::collections::{BTreeMap, BTreeSet};

/// Iteration cap for partial-fixpoint strata.
pub const PFP_CAP: usize = 10_000;
/// Iteration cap for semi-naive strata (a safety net; monotone fixpoints
/// over finite domains terminate on their own).
pub const SEMI_NAIVE_CAP: usize = 10_000_000;

/// The reserved Δ-relation prefix used during semi-naive evaluation.
fn delta_name(p: &Name) -> Name {
    rel_core::name(format!("Δ{p}"))
}

/// Materialize every `Materialize`-mode predicate of the module, stratum
/// by stratum, starting from the database's base relations. Returns the
/// full relation state (EDB ∪ IDB).
pub fn materialize(module: &Module, db: &Database) -> RelResult<BTreeMap<Name, Relation>> {
    materialize_with_cache(module, db, SharedIndexCache::default())
}

/// [`materialize`] with a caller-owned index cache, so lazily built hash
/// indexes survive across fixpoint iterations *and* across materialize
/// calls (e.g. a session's repeated queries over the same base data).
/// Entries are keyed on relation generations, so stale indexes are
/// replaced automatically when a relation changes.
pub fn materialize_with_cache(
    module: &Module,
    db: &Database,
    cache: SharedIndexCache,
) -> RelResult<BTreeMap<Name, Relation>> {
    // CoW relations make this initial map O(#relations) pointer bumps —
    // no tuple is copied until somebody mutates a base relation.
    let mut rels: BTreeMap<Name, Relation> =
        db.iter().map(|(n, r)| (n.clone(), r.clone())).collect();
    for stratum in &module.strata {
        let mats: Vec<&Name> = stratum
            .preds
            .iter()
            .filter(|p| {
                matches!(
                    module.pred_info.get(*p).map(|i| &i.mode),
                    Some(EvalMode::Materialize) | None
                )
            })
            .collect();
        if mats.is_empty() {
            continue; // demand-only stratum: evaluated lazily at call sites
        }
        if stratum.recursive && mats.len() != stratum.preds.len() {
            return Err(RelError::Stratify(format!(
                "stratum {:?} mixes materializable and demand-driven predicates \
                 in one recursive component",
                stratum.preds
            )));
        }
        if !stratum.recursive {
            let p = mats[0];
            let derived = {
                let cx = EvalCtx::with_cache(module, &rels, cache.clone());
                eval_pred_once(&cx, module, p)?
            };
            rels.entry(p.clone()).or_default().absorb(&derived);
        } else if stratum.monotone {
            semi_naive(module, &mut rels, &stratum.preds, &cache)?;
        } else {
            pfp(module, &mut rels, &stratum.preds, &cache)?;
        }
    }
    // Keep the cache bounded for long-lived sessions: only indexes that
    // still match the final relation state (EDB + fixpoint results) can
    // be hit again; Δ-overlay and superseded-iteration indexes cannot.
    cache.prune_stale(&rels);
    Ok(rels)
}

/// Evaluate all rules of one predicate once.
fn eval_pred_once(cx: &EvalCtx<'_>, module: &Module, pred: &Name) -> RelResult<Relation> {
    let mut out = Relation::new();
    for rule in module.rules_for(pred) {
        out.absorb(&cx.eval_rule(rule, Env::new(rule.vars.len()))?);
    }
    Ok(out)
}

/// Semi-naive evaluation of a monotone recursive stratum.
fn semi_naive(
    module: &Module,
    rels: &mut BTreeMap<Name, Relation>,
    preds: &[Name],
    cache: &SharedIndexCache,
) -> RelResult<()> {
    let scc: BTreeSet<&Name> = preds.iter().collect();

    // Pre-compute Δ-focused rule variants for each predicate.
    let mut variants: BTreeMap<&Name, Vec<Rule>> = BTreeMap::new();
    for p in preds {
        let mut vs = Vec::new();
        for rule in module.rules_for(p) {
            let n = count_scc_refs(rule, &scc);
            for focus in 0..n {
                vs.push(delta_variant(rule, &scc, focus));
            }
        }
        variants.insert(p, vs);
    }

    // Iteration 0: full evaluation (SCC relations start as their EDB
    // contents, typically empty).
    let mut delta: BTreeMap<Name, Relation> = BTreeMap::new();
    {
        let cx = EvalCtx::with_cache(module, rels, cache.clone());
        for p in preds {
            let mut d = eval_pred_once(&cx, module, p)?;
            if let Some(existing) = rels.get(p) {
                d.absorb(existing);
            }
            delta.insert(p.clone(), d);
        }
    }
    for p in preds {
        let d = delta[p].clone(); // O(1): CoW handle
        rels.insert(p.clone(), d);
    }

    for _iter in 0..SEMI_NAIVE_CAP {
        if delta.values().all(Relation::is_empty) {
            // Remove Δ overlays.
            for p in preds {
                rels.remove(&delta_name(p));
            }
            return Ok(());
        }
        // Install Δ overlays — O(1) CoW clones, not deep copies.
        for p in preds {
            rels.insert(delta_name(p), delta[p].clone());
        }
        let mut new_delta: BTreeMap<Name, Relation> = BTreeMap::new();
        {
            let cx = EvalCtx::with_cache(module, rels, cache.clone());
            for p in preds {
                let mut fresh = Relation::new();
                for rule in &variants[p] {
                    fresh.absorb(&cx.eval_rule(rule, Env::new(rule.vars.len()))?);
                }
                // Δ = fresh ∖ current without copying the (large)
                // accumulated relation.
                if let Some(current) = rels.get(p) {
                    fresh.minus_in_place(current);
                }
                new_delta.insert(p.clone(), fresh);
            }
        }
        for p in preds {
            let d = &new_delta[p];
            if !d.is_empty() {
                rels.get_mut(p).expect("inserted above").absorb(d);
            }
        }
        delta = new_delta;
    }
    Err(RelError::Divergent {
        relation: preds[0].to_string(),
        iterations: SEMI_NAIVE_CAP,
    })
}

/// Partial-fixpoint evaluation of a non-monotone recursive stratum.
fn pfp(
    module: &Module,
    rels: &mut BTreeMap<Name, Relation>,
    preds: &[Name],
    cache: &SharedIndexCache,
) -> RelResult<()> {
    // Previous iterate, starting from the EDB contents (usually empty).
    // All snapshots below are O(1) CoW clones.
    let mut prev: BTreeMap<Name, Relation> = preds
        .iter()
        .map(|p| (p.clone(), rels.get(p).cloned().unwrap_or_default()))
        .collect();
    for p in preds {
        rels.insert(p.clone(), prev[p].clone());
    }
    for _iter in 0..PFP_CAP {
        let mut next: BTreeMap<Name, Relation> = BTreeMap::new();
        {
            let cx = EvalCtx::with_cache(module, rels, cache.clone());
            for p in preds {
                next.insert(p.clone(), eval_pred_once(&cx, module, p)?);
            }
        }
        if converged(&prev, &next) {
            return Ok(());
        }
        for p in preds {
            rels.insert(p.clone(), next[p].clone());
        }
        prev = next;
    }
    Err(RelError::Divergent {
        relation: preds[0].to_string(),
        iterations: PFP_CAP,
    })
}

/// Have two PFP iterates converged? Checked per predicate with cheap
/// short-circuits — shared storage / equal generation, then length, then
/// the cached content fingerprint — before any element-wise comparison.
fn converged(prev: &BTreeMap<Name, Relation>, next: &BTreeMap<Name, Relation>) -> bool {
    debug_assert_eq!(prev.len(), next.len());
    prev.iter().all(|(p, a)| {
        let b = &next[p];
        a.len() == b.len() && a.fingerprint() == b.fingerprint() && a == b
    })
}

// ----------------------------------------------------------------------
// Δ-variant rewriting
// ----------------------------------------------------------------------

/// Count references to SCC predicates in a rule — a read-only walk, no
/// clone of the rule.
pub fn count_scc_refs(rule: &Rule, scc: &BTreeSet<&Name>) -> usize {
    let mut n = 0;
    visit_rule(rule, &mut |p| {
        if scc.contains(p) {
            n += 1;
        }
    });
    n
}

/// Apply `f` to every predicate reference in the rule, read-only, in the
/// same traversal order as [`map_rule`].
pub fn visit_rule(rule: &Rule, f: &mut impl FnMut(&Name)) {
    for p in &rule.params {
        if let AbsParam::In(_, dom) = p {
            visit_rexpr(dom, f);
        }
    }
    visit_rexpr(&rule.body, f);
}

fn visit_formula(x: &Formula, f: &mut impl FnMut(&Name)) {
    match x {
        Formula::True | Formula::False => {}
        Formula::Conj(items) | Formula::Disj(items) => {
            for i in items {
                visit_formula(i, f);
            }
        }
        Formula::Not(inner) => visit_formula(inner, f),
        Formula::Atom(a) => f(&a.pred),
        Formula::DynAtom { rel, .. } => visit_rexpr(rel, f),
        Formula::Cmp { lhs, rhs, .. } => {
            visit_rexpr(lhs, f);
            visit_rexpr(rhs, f);
        }
        Formula::Member { of, .. } => visit_rexpr(of, f),
        Formula::Exists { body, .. } => visit_formula(body, f),
        Formula::OfExpr(e) => visit_rexpr(e, f),
    }
}

fn visit_rexpr(x: &RExpr, f: &mut impl FnMut(&Name)) {
    match x {
        RExpr::Pred(p) => f(p),
        RExpr::PApp { pred, .. } => f(pred),
        RExpr::DynPApp { rel, .. } => visit_rexpr(rel, f),
        RExpr::Product(es) | RExpr::Union(es) => {
            for e in es {
                visit_rexpr(e, f);
            }
        }
        RExpr::Singleton(_) => {}
        RExpr::Where { body, cond } => {
            visit_rexpr(body, f);
            visit_formula(cond, f);
        }
        RExpr::Abstract { params, body, .. } => {
            for p in params.iter() {
                if let AbsParam::In(_, dom) = p {
                    visit_rexpr(dom, f);
                }
            }
            visit_rexpr(body, f);
        }
        RExpr::Reduce { op, input, .. } => {
            visit_rexpr(op, f);
            visit_rexpr(input, f);
        }
        RExpr::BuiltinApp { args, .. } => {
            for a in args {
                visit_rexpr(a, f);
            }
        }
        RExpr::DotJoin(a, b) | RExpr::LeftOverride(a, b) => {
            visit_rexpr(a, f);
            visit_rexpr(b, f);
        }
        RExpr::OfFormula(inner) => visit_formula(inner, f),
    }
}

/// Produce the rule variant whose `focus`-th SCC reference reads the Δ
/// relation.
pub fn delta_variant(rule: &Rule, scc: &BTreeSet<&Name>, focus: usize) -> Rule {
    let mut out = rule.clone();
    let mut i = 0;
    map_rule(&mut out, &mut |p| {
        if scc.contains(p) {
            let name = if i == focus { delta_name(p) } else { p.clone() };
            i += 1;
            name
        } else {
            p.clone()
        }
    });
    out
}

/// Apply `f` to every predicate reference in the rule, in a fixed
/// traversal order.
fn map_rule(rule: &mut Rule, f: &mut impl FnMut(&Name) -> Name) {
    for p in &mut rule.params {
        if let AbsParam::In(_, dom) = p {
            map_rexpr(dom, f);
        }
    }
    map_rexpr(&mut rule.body, f);
}

fn map_formula(x: &mut Formula, f: &mut impl FnMut(&Name) -> Name) {
    match x {
        Formula::True | Formula::False => {}
        Formula::Conj(items) | Formula::Disj(items) => {
            for i in items {
                map_formula(i, f);
            }
        }
        Formula::Not(inner) => map_formula(inner, f),
        Formula::Atom(a) => a.pred = f(&a.pred),
        Formula::DynAtom { rel, .. } => map_rexpr(rel, f),
        Formula::Cmp { lhs, rhs, .. } => {
            map_rexpr(lhs, f);
            map_rexpr(rhs, f);
        }
        Formula::Member { of, .. } => map_rexpr(of, f),
        Formula::Exists { body, .. } => map_formula(body, f),
        Formula::OfExpr(e) => map_rexpr(e, f),
    }
}

fn map_rexpr(x: &mut RExpr, f: &mut impl FnMut(&Name) -> Name) {
    match x {
        RExpr::Pred(p) => *p = f(p),
        RExpr::PApp { pred, .. } => *pred = f(pred),
        RExpr::DynPApp { rel, .. } => map_rexpr(rel, f),
        RExpr::Product(es) | RExpr::Union(es) => {
            for e in es {
                map_rexpr(e, f);
            }
        }
        RExpr::Singleton(_) => {}
        RExpr::Where { body, cond } => {
            map_rexpr(body, f);
            map_formula(cond, f);
        }
        RExpr::Abstract { params, body, .. } => {
            for p in params.iter_mut() {
                if let AbsParam::In(_, dom) = p {
                    map_rexpr(dom, f);
                }
            }
            map_rexpr(body, f);
        }
        RExpr::Reduce { op, input, .. } => {
            map_rexpr(op, f);
            map_rexpr(input, f);
        }
        RExpr::BuiltinApp { args, .. } => {
            for a in args {
                map_rexpr(a, f);
            }
        }
        RExpr::DotJoin(a, b) | RExpr::LeftOverride(a, b) => {
            map_rexpr(a, f);
            map_rexpr(b, f);
        }
        RExpr::OfFormula(inner) => map_formula(inner, f),
    }
}

/// Evaluate *naively* (no deltas): used by the naive-vs-semi-naive
/// ablation benchmark (E4).
pub fn materialize_naive(module: &Module, db: &Database) -> RelResult<BTreeMap<Name, Relation>> {
    let mut rels: BTreeMap<Name, Relation> =
        db.iter().map(|(n, r)| (n.clone(), r.clone())).collect();
    for stratum in &module.strata {
        let mats: Vec<&Name> = stratum
            .preds
            .iter()
            .filter(|p| {
                matches!(
                    module.pred_info.get(*p).map(|i| &i.mode),
                    Some(EvalMode::Materialize) | None
                )
            })
            .collect();
        if mats.is_empty() {
            continue;
        }
        if !stratum.recursive {
            let p = mats[0];
            let derived = {
                let cx = EvalCtx::new(module, &rels);
                eval_pred_once(&cx, module, p)?
            };
            rels.entry(p.clone()).or_default().absorb(&derived);
            continue;
        }
        if !stratum.monotone {
            pfp(module, &mut rels, &stratum.preds, &SharedIndexCache::default())?;
            continue;
        }
        // Naive: re-derive everything until nothing changes.
        for p in &stratum.preds {
            rels.entry(p.clone()).or_default();
        }
        for _ in 0..SEMI_NAIVE_CAP {
            let mut changed = false;
            let mut next: BTreeMap<Name, Relation> = BTreeMap::new();
            {
                let cx = EvalCtx::new(module, &rels);
                for p in &stratum.preds {
                    next.insert(p.clone(), eval_pred_once(&cx, module, p)?);
                }
            }
            for p in &stratum.preds {
                let added = rels.get_mut(p).expect("seeded").absorb(&next[p]);
                changed |= added > 0;
            }
            if !changed {
                break;
            }
        }
    }
    Ok(rels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rel_core::tuple;

    fn edge_db() -> Database {
        let mut db = Database::new();
        for (a, b) in [(1, 2), (2, 3), (3, 4)] {
            db.insert("E", tuple![a, b]);
        }
        db
    }

    #[test]
    fn transitive_closure_semi_naive() {
        let module = rel_sema::compile(
            "def TC(x,y) : E(x,y)\n\
             def TC(x,y) : exists((z) | E(x,z) and TC(z,y))",
        )
        .unwrap();
        let rels = materialize(&module, &edge_db()).unwrap();
        let tc = &rels[&rel_core::name("TC")];
        assert_eq!(tc.len(), 6); // 1→2,1→3,1→4,2→3,2→4,3→4
        assert!(tc.contains(&tuple![1, 4]));
        assert!(!tc.contains(&tuple![4, 1]));
    }

    #[test]
    fn naive_matches_semi_naive() {
        let module = rel_sema::compile(
            "def TC(x,y) : E(x,y)\n\
             def TC(x,y) : exists((z) | E(x,z) and TC(z,y))",
        )
        .unwrap();
        let a = materialize(&module, &edge_db()).unwrap();
        let b = materialize_naive(&module, &edge_db()).unwrap();
        assert_eq!(a[&rel_core::name("TC")], b[&rel_core::name("TC")]);
    }

    #[test]
    fn nonlinear_recursion() {
        // TC via doubling: TC(x,y) :- TC(x,z), TC(z,y).
        let module = rel_sema::compile(
            "def TC(x,y) : E(x,y)\n\
             def TC(x,y) : exists((z) | TC(x,z) and TC(z,y))",
        )
        .unwrap();
        let rels = materialize(&module, &edge_db()).unwrap();
        assert_eq!(rels[&rel_core::name("TC")].len(), 6);
    }

    #[test]
    fn stratified_negation() {
        let module = rel_sema::compile(
            "def Reach(x) : Start(x)\n\
             def Reach(y) : exists((x) | Reach(x) and E(x,y))\n\
             def Unreach(x) : Node(x) and not Reach(x)",
        )
        .unwrap();
        let mut db = edge_db();
        db.insert("Start", tuple![1]);
        for n in 1..=5 {
            db.insert("Node", tuple![n]);
        }
        let rels = materialize(&module, &db).unwrap();
        assert_eq!(rels[&rel_core::name("Reach")].len(), 4);
        assert_eq!(
            rels[&rel_core::name("Unreach")],
            Relation::from_tuples([tuple![5]])
        );
    }

    #[test]
    fn pfp_win_move_game() {
        // Win(x) :- Move(x,y), not Win(y) — the classic non-stratified
        // program; on an acyclic game graph PFP reaches the unique fixpoint.
        let module = rel_sema::compile(
            "def Win(x) : exists((y) | Move(x,y) and not Win(y))",
        )
        .unwrap();
        let mut db = Database::new();
        for (a, b) in [(1, 2), (2, 3), (3, 4)] {
            db.insert("Move", tuple![a, b]);
        }
        let rels = materialize(&module, &db).unwrap();
        // 4 has no moves: lost. 3 wins (→4). 2 loses (only →3 wins).
        // 1 wins (→2 loses).
        assert_eq!(
            rels[&rel_core::name("Win")],
            Relation::from_tuples([tuple![1], tuple![3]])
        );
    }

    #[test]
    fn delta_variant_rewrites_one_occurrence() {
        let module = rel_sema::compile(
            "def TC(x,y) : exists((z) | TC(x,z) and TC(z,y))",
        )
        .unwrap();
        let rule = &module.rules_for("TC")[0];
        let tc = rel_core::name("TC");
        let scc: BTreeSet<&Name> = [&tc].into_iter().collect();
        assert_eq!(count_scc_refs(rule, &scc), 2);
        let v0 = delta_variant(rule, &scc, 0);
        let v1 = delta_variant(rule, &scc, 1);
        assert_ne!(v0, v1);
        let refs = |r: &Rule| {
            let mut names = Vec::new();
            visit_rule(r, &mut |p| names.push(p.to_string()));
            names
        };
        assert!(refs(&v0).contains(&"ΔTC".to_string()));
        assert!(refs(&v1).contains(&"ΔTC".to_string()));
    }

    #[test]
    fn visit_rule_matches_map_rule_order() {
        let module = rel_sema::compile(
            "def P(x,y) : exists((z) | E(x,z) and (Q(z,y) or not R(z)) \
             and S[z](y))",
        )
        .unwrap();
        for rule in module.rules.values().flatten() {
            let mut visited = Vec::new();
            visit_rule(rule, &mut |p| visited.push(p.clone()));
            let mut mapped = Vec::new();
            map_rule(&mut rule.clone(), &mut |p| {
                mapped.push(p.clone());
                p.clone()
            });
            assert_eq!(visited, mapped, "traversal orders diverged");
        }
    }

    #[test]
    fn materialize_shares_edb_storage() {
        // The initial relation map is built from O(1) CoW clones: a base
        // relation the program never mutates still shares storage with
        // the database after materialization.
        let module = rel_sema::compile(
            "def TC(x,y) : E(x,y)\n\
             def TC(x,y) : exists((z) | E(x,z) and TC(z,y))",
        )
        .unwrap();
        let db = edge_db();
        let rels = materialize(&module, &db).unwrap();
        let e = rels.get(&rel_core::name("E")).expect("EDB relation present");
        assert!(
            e.shares_storage(db.get("E").unwrap()),
            "EDB relation was deep-copied into the fixpoint state"
        );
        assert_eq!(e.generation(), db.get("E").unwrap().generation());
    }

    #[test]
    fn iteration_order_is_deterministic_across_strategies() {
        // The same fixpoint reached semi-naively, naively, or twice in a
        // row yields the identical tuple sequence, not just the same set.
        let module = rel_sema::compile(
            "def TC(x,y) : E(x,y)\n\
             def TC(x,y) : exists((z) | E(x,z) and TC(z,y))",
        )
        .unwrap();
        let db = edge_db();
        let order = |rels: &BTreeMap<Name, Relation>| -> Vec<rel_core::Tuple> {
            rels[&rel_core::name("TC")].iter().cloned().collect()
        };
        let a = order(&materialize(&module, &db).unwrap());
        let b = order(&materialize(&module, &db).unwrap());
        let c = order(&materialize_naive(&module, &db).unwrap());
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn pfp_convergence_short_circuit_is_sound() {
        // Two maps that differ only in content (same lengths) must not be
        // declared converged.
        let a: BTreeMap<Name, Relation> = [(
            rel_core::name("P"),
            Relation::from_tuples([tuple![1]]),
        )]
        .into_iter()
        .collect();
        let b: BTreeMap<Name, Relation> = [(
            rel_core::name("P"),
            Relation::from_tuples([tuple![2]]),
        )]
        .into_iter()
        .collect();
        assert!(!converged(&a, &b));
        assert!(converged(&a, &a.clone()));
    }
}
