//! # rel-engine
//!
//! Bottom-up evaluation engine for Rel, fronted by the **client API v2**:
//! prepared queries, typed results, and explicit transaction handles.
//!
//! ## Client API
//!
//! A [`Session`] owns a database plus installed library source. The
//! intended shape of a client interaction is *prepare → execute → typed
//! rows*, with writes staged through a transaction handle:
//!
//! ```
//! use rel_core::database::figure1_database;
//! use rel_engine::{Params, Session};
//!
//! let mut s = Session::new(figure1_database());
//!
//! // Compile once; the module is cached by source.
//! let q = s
//!     .prepare("def output(x, y) : ProductPrice(x, y) and y > ?min")
//!     .unwrap();
//!
//! // Execute many times — zero recompilation, parameters bound per call.
//! let rows: Vec<(String, i64)> = q
//!     .execute_with(&s, &Params::new().set("min", 15))
//!     .unwrap()
//!     .rows()
//!     .unwrap();
//! assert_eq!(rows.len(), 3);
//!
//! // Stage multiple steps in one transaction; constraints are checked
//! // on commit, abort is free.
//! let mut txn = s.begin();
//! txn.run("def insert(:Expensive, x) : exists((y) | ProductPrice(x, y) and y > 25)")
//!     .unwrap();
//! let outcome = txn.commit().unwrap();
//! assert_eq!(outcome.inserted, 2);
//! ```
//!
//! [`Session::query`] and [`Session::transact`] remain as thin one-shot
//! wrappers over the same machinery (both go through the session's
//! module cache).
//!
//! ## Modules
//!
//! * [`prepared`] — [`Prepared`] query handles and [`Params`] bindings:
//!   compile once (`library + query`, cached by source), execute against
//!   the current CoW database snapshot with `?name` placeholders bound at
//!   execute time;
//! * [`txn`] — explicit [`Transaction`] handles over an O(1) CoW
//!   candidate snapshot: staged `run`/prepared steps plus direct
//!   `stage_insert`/`stage_delete`, constraint checking on `commit()`,
//!   free `abort()`;
//! * [`session`] — the session itself: database + libraries + module
//!   cache + shared index cache; `Session` is `Send + Sync` and serves
//!   queries from many threads;
//! * [`config`] — [`EngineConfig`]: every engine switch (incremental,
//!   WCOJ, columnar, metrics, watch buffer, durability) as one builder;
//!   [`EngineConfig::from_env`] resolves the whole `REL_*` table below in
//!   one call, [`Session::with_config`] / [`Session::open_with`] apply it
//!   at construction, and the per-switch setters stay as runtime wrappers
//!   over the same switch points;
//! * [`watch`] — standing queries: [`Session::watch`] registers a
//!   prepared query and every later commit pushes the exact
//!   added/removed output rows as [`WatchDelta`] batches over a bounded
//!   channel (initial snapshot at registration, O(1) skip for commits
//!   outside the query's cone, coalescing resync snapshots for lagging
//!   subscribers);
//! * [`eval`] — formula evaluation over environment batches with greedy
//!   sideways-information-passing, open expression evaluation (grouped
//!   aggregation, generator `where`), tuple-variable matching,
//!   demand-driven (tabled) predicate evaluation, and a generation-keyed
//!   hash-index cache ([`eval::SharedIndexCache`]) that survives across
//!   fixpoint iterations and session queries;
//! * [`fixpoint`] — stratum materialization: semi-naive for monotone
//!   recursion, partial-fixpoint iteration for Rel's non-stratified
//!   programs (Addendum A); zero-copy over the CoW relations of
//!   `rel-core`; a parallel scheduler walks the stratum DAG with scoped
//!   worker threads (`REL_EVAL_THREADS` pins the worker count);
//! * [`incremental`] — incremental view maintenance: given a captured
//!   pre-state fixpoint ([`PreState`]) and the generation-diffed set of
//!   changed base relations, re-derives only the dependent cone —
//!   pointer-bump reuse outside it, delta-seeded semi-naive restart for
//!   monotone recursion inside it. Drives `Session` evaluation and the
//!   commit-time constraint re-check; `REL_INCREMENTAL=0` falls back to
//!   full re-materialization;
//! * [`builtins`] — implementations of the infinite built-in relations
//!   with invertible modes (`add(x, 5, z)` solves for `x`);
//! * [`leapfrog`] — the leapfrog-triejoin worst-case-optimal join kernel
//!   (the substrate the paper credits for making GNF practical, §7).
//!   `eval`'s conjunction scheduler routes qualifying multi-atom groups
//!   (triangles, cyclic joins) through it, over permuted sorted tries
//!   cached generation-keyed in the shared index cache. The routing mode
//!   is `REL_WCOJ` / [`Session::set_wcoj`] ([`WcojMode`]): `0` disables,
//!   `force` drags every eligible conjunction through the kernel; all
//!   modes produce byte-identical results;
//! * [`metrics`] / [`profile`] — engine-wide observability: a
//!   process-wide registry of atomic counters and latency histograms
//!   (zero-cost no-ops unless `REL_METRICS` / [`Session::set_metrics`]
//!   turns them on), plus per-query [`QueryProfile`]s from
//!   [`Session::query_profiled`] / [`Prepared::execute_profiled`] —
//!   per-stratum wall time and iteration counts, join-kernel choice,
//!   cache outcomes, incremental classification — with an EXPLAIN-style
//!   text renderer;
//! * [`durability`] / [`wal`] / [`snapshot`] / [`recovery`] — the durable
//!   store behind [`Session::open`]: committed transactions append
//!   CRC32-framed net deltas to a write-ahead log, compaction folds the
//!   log into atomically published snapshots, and recovery replays the
//!   log tail over the newest valid snapshot — landing, for *every* crash
//!   point, on a byte-identical prefix of the committed history (proven
//!   by the crash-injection harness in [`durability::failpoint`] and the
//!   `crash_recovery` suite).
//!
//! ## Environment variables
//!
//! Every `REL_*` switch the engine reads, in one place — plus the
//! `REL_SERVER_*` knobs the `rel-server` crate layers on top, so the
//! whole `REL_*` namespace has a single consolidated table. Each is a
//! process-wide *default*; where a per-session (or per-server) override
//! exists it is listed alongside. The engine rows of this table are
//! exactly the fields of [`EngineConfig`] — [`EngineConfig::from_env`]
//! resolves all of them in one call, and the per-field docs on
//! [`EngineConfig`] are the authoritative switch reference this table is
//! generated from.
//!
//! | Variable | Values | Default | Effect |
//! |----------|--------|---------|--------|
//! | `REL_EVAL_THREADS` | positive integer | # cores (≤ 8) | Worker threads per fixpoint run ([`eval_threads`]); `1` is fully sequential. |
//! | `REL_INCREMENTAL` | `0`/`false`/`off`/`no` to disable | enabled | Incremental view maintenance for session evaluation and commit-time constraint re-checks ([`Session::set_incremental`] overrides per session). Results are byte-identical either way. |
//! | `REL_WCOJ` | `0`/`off`, `force`, else auto | auto | Routing of multi-atom conjunctions through the leapfrog WCOJ kernel ([`Session::set_wcoj`] overrides per session). Results are byte-identical in every mode. |
//! | `REL_COLUMNAR` | `0`/`false`/`off`/`no` to disable | enabled | Typed columnar storage layout under `Relation` ([`rel_core::columnar`]): set-operation merges, trie seeks, and sort keys run over schema-specialized columns (`Vec<i64>`, dictionary-encoded strings, …) instead of boxed `Value` rows. [`Session::set_columnar`] flips the same switch at runtime — it is **process-wide**, not per session, because the kernels live below the session layer. Results are byte-identical in both layouts. |
//! | `REL_DURABILITY` | `0`/`off`/`false`/`no` to disable | enabled | Whether [`Session::open`] actually attaches durable storage; disabled, it returns a plain ephemeral session without touching disk ([`durability::durability_env_enabled`]). |
//! | `REL_FSYNC` | `always`, `batch`, `off`/`0`/`false`/`no` | `batch` | When WAL appends reach stable storage ([`FsyncPolicy::from_env`]; [`DurabilityConfig`] overrides per session via [`Session::open_with`]). |
//! | `REL_WATCH_BUFFER` | positive integer | `64` | Delivery buffer of a standing query ([`Session::watch`]), in [`WatchDelta`] batches: a subscriber further behind than this goes *lagged* — commits stop buffering deltas for it and the next in-cone commit after it drains coalesces everything missed into one resync snapshot ([`Session::set_watch_buffer`] overrides per session). |
//! | `REL_SERVER_ADDR` | `host:port` | `127.0.0.1:0` | Listen address of `rel-server` (port `0` picks a free port). Read by `ServerConfig::from_env` in the `rel-server` crate; the config struct overrides per server. |
//! | `REL_SERVER_MAX_CONNS` | positive integer | `64` | Max simultaneous connections; excess connects get a typed `Busy` reply. |
//! | `REL_SERVER_MAX_INFLIGHT` | positive integer | `4` | Max commit jobs one connection may have queued at once (`Busy` beyond it). |
//! | `REL_SERVER_QUEUE_DEPTH` | positive integer | `256` | Max commit jobs queued across all connections (`Busy` when full). |
//! | `REL_SERVER_GROUP_WINDOW` | positive integer | `32` | Max commits coalesced into one group-commit window — one WAL fsync — per commit-worker pass ([`Session::begin_commit_group`]). |
//! | `REL_SERVER_POOL` | positive integer | `8` | Max read replicas checked out of the server's session pool at once (readers block, never fail, beyond it). |
//! | `REL_METRICS` | `1`/`true`/`on`/`yes` to enable | disabled | Hot-path engine metrics ([`metrics`]): cache hit/miss, join-kernel dispatch, incremental classification, and per-query latency counters on the process-wide [`metrics::registry`] ([`Session::set_metrics`] flips the same process-wide switch at runtime). Cold-path counters (commits, aborts, WAL bytes, fsyncs, compactions, snapshot publishes) record regardless. Results are byte-identical either way. |
//! | `REL_SLOW_QUERY_MS` | non-negative integer | unset | Slow-query log: any [`Session::query`] at or above the threshold is profiled and its rendered [`QueryProfile`] printed to stderr ([`metrics::slow_query_ms`]). |
//!
//! [`Session::query`]/[`Session::eval`] results are unaffected by every
//! switch in the table — they tune scheduling, caching, observability,
//! and durability, never semantics.

pub mod builtins;
pub mod config;
pub mod durability;
pub mod env;
pub mod eval;
pub mod fixpoint;
pub mod incremental;
pub mod leapfrog;
mod lru;
pub mod metrics;
pub mod prepared;
pub mod profile;
pub mod recovery;
pub mod session;
pub mod snapshot;
pub mod txn;
pub mod wal;
pub mod watch;

pub use config::EngineConfig;
pub use durability::{DurabilityConfig, FsyncPolicy};
pub use eval::{EvalCtx, SharedIndexCache, WcojMode, WCOJ_MIN_ATOMS};
pub use fixpoint::{
    eval_threads, materialize, materialize_naive, materialize_with_cache,
    materialize_with_threads,
};
pub use incremental::{
    materialize_incremental, materialize_incremental_with_stats, IncrementalStats, PreState,
};
pub use metrics::MetricsSnapshot;
pub use prepared::{Params, Prepared};
pub use profile::{
    FixpointOutcome, KernelCounts, QueryProfile, StratumAction, StratumProfile,
};
pub use session::{Session, TxnOutcome};
pub use txn::Transaction;
pub use watch::{Watch, WatchDelta, DEFAULT_WATCH_BUFFER};
