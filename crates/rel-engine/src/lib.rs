//! # rel-engine
//!
//! Bottom-up evaluation engine for Rel:
//!
//! * [`eval`] — formula evaluation over environment batches with greedy
//!   sideways-information-passing, open expression evaluation (grouped
//!   aggregation, generator `where`), tuple-variable matching,
//!   demand-driven (tabled) predicate evaluation, and a generation-keyed
//!   hash-index cache ([`eval::SharedIndexCache`]) that survives across
//!   fixpoint iterations and session queries;
//! * [`fixpoint`] — stratum materialization: semi-naive for monotone
//!   recursion, partial-fixpoint iteration for Rel's non-stratified
//!   programs (Addendum A); zero-copy over the CoW relations of
//!   `rel-core` (Δ overlays and iterate snapshots are O(1) clones); a
//!   parallel scheduler walks the stratum DAG with scoped worker threads,
//!   materializing independent strata concurrently with byte-identical
//!   output (`REL_EVAL_THREADS` pins the worker count);
//! * [`session`] — transactions with `output` / `insert` / `delete`
//!   control relations and integrity-constraint enforcement (§3.4–3.5);
//!   `Session` is `Send + Sync` and can serve queries from many threads;
//! * [`builtins`] — implementations of the infinite built-in relations
//!   with invertible modes (`add(x, 5, z)` solves for `x`);
//! * [`leapfrog`] — a leapfrog-triejoin worst-case-optimal join kernel
//!   (the substrate the paper credits for making GNF practical, §7).

pub mod builtins;
pub mod env;
pub mod eval;
pub mod fixpoint;
pub mod leapfrog;
pub mod session;

pub use eval::{EvalCtx, SharedIndexCache};
pub use fixpoint::{
    eval_threads, materialize, materialize_naive, materialize_with_cache,
    materialize_with_threads,
};
pub use session::{Session, TxnOutcome};
