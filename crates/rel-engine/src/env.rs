//! Evaluation environments: partial assignments of rule variables to
//! values (first-order) or sub-tuples (tuple variables, §4.1).

use rel_core::{Tuple, Value};
use rel_sema::ir::{AbsParam, Term, Var};

/// A binding for one variable.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum EnvVal {
    /// First-order value.
    Val(Value),
    /// Tuple-variable binding (any length, including empty).
    Tup(Vec<Value>),
}

/// A partial assignment of the rule's variables. Slot `i` holds the
/// binding of variable `i` (variables are rule-local and densely
/// numbered).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug, Default)]
pub struct Env {
    slots: Vec<Option<EnvVal>>,
}

impl Env {
    /// An environment with `n` unbound slots.
    pub fn new(n: usize) -> Self {
        Env { slots: vec![None; n] }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when there are no slots at all.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Get a binding.
    pub fn get(&self, v: Var) -> Option<&EnvVal> {
        self.slots.get(v as usize).and_then(Option::as_ref)
    }

    /// Is `v` bound?
    pub fn is_bound(&self, v: Var) -> bool {
        self.get(v).is_some()
    }

    /// Bind `v` (overwrites; callers check conflicts first).
    pub fn bind(&mut self, v: Var, val: EnvVal) {
        let idx = v as usize;
        if idx >= self.slots.len() {
            self.slots.resize(idx + 1, None);
        }
        self.slots[idx] = Some(val);
    }

    /// Remove the binding of `v`.
    pub fn unbind(&mut self, v: Var) {
        if let Some(slot) = self.slots.get_mut(v as usize) {
            *slot = None;
        }
    }

    /// Remove every binding in the variable-id range `[lo, hi)` —
    /// closing a lexical scope (quantifier or abstraction).
    pub fn unbind_range(&mut self, lo: Var, hi: Var) {
        for v in lo..hi.min(self.slots.len() as Var) {
            self.slots[v as usize] = None;
        }
    }

    /// First-order value of `v`, if bound to one.
    pub fn value(&self, v: Var) -> Option<&Value> {
        match self.get(v) {
            Some(EnvVal::Val(val)) => Some(val),
            _ => None,
        }
    }

    /// The concrete value of a term under this environment.
    pub fn term_value(&self, t: &Term) -> Option<Value> {
        match t {
            Term::Const(c) => Some(c.clone()),
            Term::Var(v) => self.value(*v).cloned(),
            Term::TupleVar(_) => None,
        }
    }

    /// Is the term ground under this environment?
    pub fn term_bound(&self, t: &Term) -> bool {
        match t {
            Term::Const(_) => true,
            Term::Var(v) | Term::TupleVar(v) => self.is_bound(*v),
        }
    }

    /// Append the values a term denotes to `out` (tuple variables splice
    /// their whole sub-tuple). Returns `false` when unbound.
    pub fn splice_term(&self, t: &Term, out: &mut Vec<Value>) -> bool {
        match t {
            Term::Const(c) => {
                out.push(c.clone());
                true
            }
            Term::Var(v) => match self.get(*v) {
                Some(EnvVal::Val(val)) => {
                    out.push(val.clone());
                    true
                }
                _ => false,
            },
            Term::TupleVar(v) => match self.get(*v) {
                Some(EnvVal::Tup(vals)) => {
                    out.extend(vals.iter().cloned());
                    true
                }
                _ => false,
            },
        }
    }

    /// Build the head tuple for a parameter list (all parameters must be
    /// bound). Returns `None` when something is unbound.
    pub fn head_tuple(&self, params: &[AbsParam]) -> Option<Tuple> {
        let mut vals = Vec::with_capacity(params.len());
        for p in params {
            match p {
                AbsParam::Fixed(c) => vals.push(c.clone()),
                AbsParam::Val(v) | AbsParam::In(v, _) => match self.get(*v) {
                    Some(EnvVal::Val(val)) => vals.push(val.clone()),
                    _ => return None,
                },
                AbsParam::Tup(v) => match self.get(*v) {
                    Some(EnvVal::Tup(t)) => vals.extend(t.iter().cloned()),
                    _ => return None,
                },
            }
        }
        Some(Tuple::from(vals))
    }

    /// A copy with all bindings in `[lo, hi)` cleared — the group key used
    /// by scoped open evaluation (aggregation grouping).
    pub fn cleared(&self, lo: Var, hi: Var) -> Env {
        let mut e = self.clone();
        e.unbind_range(lo, hi);
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rel_core::Value;

    #[test]
    fn bind_get_unbind() {
        let mut e = Env::new(3);
        assert!(!e.is_bound(1));
        e.bind(1, EnvVal::Val(Value::int(7)));
        assert_eq!(e.value(1), Some(&Value::int(7)));
        e.unbind(1);
        assert!(!e.is_bound(1));
    }

    #[test]
    fn bind_grows() {
        let mut e = Env::new(1);
        e.bind(5, EnvVal::Val(Value::int(1)));
        assert!(e.is_bound(5));
    }

    #[test]
    fn unbind_range_clears_scope() {
        let mut e = Env::new(6);
        for v in 0..6 {
            e.bind(v, EnvVal::Val(Value::int(v as i64)));
        }
        e.unbind_range(2, 5);
        assert!(e.is_bound(0) && e.is_bound(1) && e.is_bound(5));
        assert!(!e.is_bound(2) && !e.is_bound(3) && !e.is_bound(4));
    }

    #[test]
    fn splice_tuple_var() {
        let mut e = Env::new(2);
        e.bind(0, EnvVal::Tup(vec![Value::int(1), Value::int(2)]));
        e.bind(1, EnvVal::Val(Value::int(3)));
        let mut out = Vec::new();
        assert!(e.splice_term(&Term::TupleVar(0), &mut out));
        assert!(e.splice_term(&Term::Var(1), &mut out));
        assert_eq!(out, vec![Value::int(1), Value::int(2), Value::int(3)]);
    }

    #[test]
    fn head_tuple_with_fixed() {
        let mut e = Env::new(1);
        e.bind(0, EnvVal::Val(Value::str("O1")));
        let params = vec![AbsParam::Fixed(Value::int(0)), AbsParam::Val(0)];
        let t = e.head_tuple(&params).unwrap();
        assert_eq!(t.values(), &[Value::int(0), Value::str("O1")]);
    }

    #[test]
    fn cleared_is_group_key() {
        let mut e = Env::new(4);
        e.bind(0, EnvVal::Val(Value::int(1)));
        e.bind(2, EnvVal::Val(Value::int(2)));
        let g = e.cleared(1, 4);
        assert!(g.is_bound(0));
        assert!(!g.is_bound(2));
    }
}
