//! The core evaluator: formula evaluation over environment batches
//! (with greedy sideways-information-passing scheduling, and a
//! worst-case-optimal escape for multi-atom joins — qualifying groups of
//! positive atoms are handed whole to the leapfrog triejoin kernel, see
//! [`WcojMode`]) and **open expression evaluation** (relation-valued
//! expressions that may bind their own free variables — the mechanism
//! behind grouped aggregation, demand-driven predicates, and
//! generator-style `where`).
//!
//! A rule `def p(params) : body` is evaluated by running the body's
//! generating part as a formula over a seed environment, then evaluating
//! the value part per resulting environment and emitting
//! `⟨params⟩ · value-tuple` head tuples (Fig. 3 of the paper).
//!
//! Under the typed columnar layout (`REL_COLUMNAR`, on by default) a
//! handful of whole-rule shapes bypass the environment machinery
//! entirely via *fused kernels*: one- and two-atom conjunctive rules run
//! as trie projections / merge joins over typed columns
//! (`try_fused_formula`), and the aggregation shapes the stdlib
//! lowers to — grouped `Reduce` over a prefix application, and
//! `LeftOverride` with a constant default — run as single sorted walks
//! (`try_fused_open`). Every fused path is bit-identical to the
//! generic evaluator; `REL_COLUMNAR=0` and `REL_WCOJ=force` disable
//! them.

use crate::builtins;
use crate::env::{Env, EnvVal};
use crate::leapfrog::{leapfrog_join, merge_join_emit, project_emit, JoinAtom, SortedRel};
use crate::metrics;
use crate::profile::ProfileSink;
use rel_core::columnar::columnar_enabled;
use rel_core::{Name, RelError, RelResult, Relation, Tuple, Value};
use rel_sema::builtins as bsig;
use rel_sema::ir::{AbsParam, Atom, EvalMode, Formula, Module, RExpr, Rule, Term, Var};
use rel_syntax::ast::CmpOp;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Cap on demand-evaluation recursion depth (`addUp`-style top-down
/// recursion).
const DEMAND_DEPTH_CAP: usize = 100_000;

/// Schedulability verdict for one conjunct.
enum Sched {
    /// Cannot run yet (needs more bound variables).
    No,
    /// Runs without binding anything new — run as early as possible.
    Filter,
    /// Runs and binds new variables, with an estimated cost.
    Generate(u64),
}

/// Evaluation context: the module, the current state of all materialized
/// relations, and caches.
///
/// The context is `Send + Sync`: its interior state (demand memo, demand
/// stack, index cache) sits behind `RwLock`/`Mutex`, so one context can be
/// shared across threads, and — more importantly for the parallel stratum
/// scheduler — contexts in different worker threads can share one
/// [`SharedIndexCache`] handle.
pub struct EvalCtx<'a> {
    /// Analyzed program.
    pub module: &'a Module,
    /// Current relation values: EDB ∪ materialized IDB (plus semi-naive
    /// `Δp` / `old§p` overlays during fixpoints).
    pub rels: &'a BTreeMap<Name, Relation>,
    /// Demand-evaluation memo: (pred, bound prefix) → full head tuples.
    demand_memo: RwLock<HashMap<DemandKey, Arc<Relation>>>,
    /// Demand stacks for cycle detection, **one per thread**: a chain of
    /// top-down calls lives on one thread, so cycle/depth checks must not
    /// see keys pushed by other threads' chains (a shared stack would
    /// report spurious cycles under concurrent demand evaluation). Lock
    /// guards are never held across recursion, so re-entrant demand
    /// evaluation cannot deadlock.
    demand_stacks: Mutex<HashMap<std::thread::ThreadId, Vec<DemandKey>>>,
    /// Lazy hash indexes, possibly shared across contexts (and hence
    /// across fixpoint iterations and scheduler threads): see
    /// [`SharedIndexCache`].
    indexes: SharedIndexCache,
    /// The profile sink installed on the cache at construction time, if
    /// any — cached here so the per-rule/per-join hot paths pay an
    /// `Option` check instead of an `RwLock` read.
    profile: Option<Arc<ProfileSink>>,
}

/// Key of a demand-evaluation memo entry: predicate and bound prefix.
type DemandKey = (Name, Vec<Value>);
/// A hash index from key values to matching rows — positions into the
/// indexed relation's shared sorted storage rather than cloned tuples:
/// building an index costs one key vector per row and an O(1) relation
/// clone, never a tuple copy, and probes borrow rows straight from the
/// shared slice.
pub(crate) struct TupleIndex {
    /// O(1) clone of the indexed relation (pins the shared row storage).
    rows: Relation,
    /// Key values → positions into `rows.as_slice()`.
    map: HashMap<Vec<Value>, Vec<u32>>,
}

impl TupleIndex {
    /// Borrow the rows matching `key`, straight from the shared storage.
    fn get(&self, key: &[Value]) -> impl Iterator<Item = &Tuple> + '_ {
        let rows = self.rows.as_slice();
        self.map
            .get(key)
            .map(|positions| positions.iter().map(move |&p| &rows[p as usize]))
            .into_iter()
            .flatten()
    }
}
/// Cache of per-(predicate, key-positions, arity) indexes. Each entry
/// remembers the relation generation it was built from; a lookup against
/// a relation with a different generation rebuilds and replaces the
/// entry, so stale indexes are evicted in place rather than accumulated.
type IndexCache = HashMap<(Name, Vec<usize>, usize), (u64, Arc<TupleIndex>)>;
/// Cache of per-(predicate, column-permutation) sorted tries for the WCOJ
/// path (the implied arity is `perm.len()`). Generation-keyed exactly
/// like [`IndexCache`]: a permuted [`SortedRel`] is built once per
/// relation state and shared read-only — across fixpoint iterations,
/// scheduler worker threads, and session queries.
type TrieCache = HashMap<(Name, Vec<usize>), (u64, Arc<SortedRel>)>;

/// How `eval_conj` routes multi-atom conjunctions through the leapfrog
/// worst-case-optimal join kernel ([`crate::leapfrog`]).
///
/// The process-wide default comes from the `REL_WCOJ` environment
/// variable (`0`/`false`/`off`/`no` → [`WcojMode::Off`],
/// `force`/`always` → [`WcojMode::Force`], anything else including unset
/// → [`WcojMode::Auto`]); [`crate::Session::set_wcoj`] overrides it per
/// session. All modes produce byte-identical results — the switch exists
/// as an escape hatch and a test axis, mirroring `REL_EVAL_THREADS` and
/// `REL_INCREMENTAL`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WcojMode {
    /// Never use the WCOJ kernel: every conjunct goes through the greedy
    /// binary-join scheduler.
    Off,
    /// Route a conjunction through leapfrog when at least
    /// [`WCOJ_MIN_ATOMS`] eligible atoms form a variable-connected group
    /// (the cyclic-join shapes — triangles, paths-with-closure — where
    /// worst-case optimality pays).
    Auto,
    /// Threshold 0: every eligible atom group routes through leapfrog,
    /// connected or not, however small. Used by the `wcoj-forced` CI leg
    /// and the equivalence suites to drag the WCOJ path over every query
    /// shape.
    Force,
}

/// Minimum size of a variable-connected eligible atom group for
/// [`WcojMode::Auto`] to choose the WCOJ plan.
pub const WCOJ_MIN_ATOMS: usize = 3;

impl WcojMode {
    /// The process default, from the `REL_WCOJ` environment variable.
    pub fn from_env() -> WcojMode {
        match std::env::var("REL_WCOJ") {
            Ok(v) => WcojMode::parse(&v),
            Err(_) => WcojMode::Auto,
        }
    }

    /// Parse a `REL_WCOJ`-style setting: `0`/`false`/`off`/`no` →
    /// [`WcojMode::Off`], `force`/`always` → [`WcojMode::Force`],
    /// anything else → [`WcojMode::Auto`].
    pub fn parse(s: &str) -> WcojMode {
        match s.trim().to_ascii_lowercase().as_str() {
            "0" | "false" | "off" | "no" => WcojMode::Off,
            "force" | "always" => WcojMode::Force,
            _ => WcojMode::Auto,
        }
    }

    /// Smallest eligible atom group this mode hands to leapfrog;
    /// `usize::MAX` disables the path.
    fn min_atoms(self) -> usize {
        match self {
            WcojMode::Off => usize::MAX,
            WcojMode::Auto => WCOJ_MIN_ATOMS,
            WcojMode::Force => 1,
        }
    }
}

/// A cloneable handle to the shared evaluation caches — hash indexes and
/// WCOJ tries — that outlive any single [`EvalCtx`]. The fixpoint engine
/// threads one handle through every iteration's context, so indexes and
/// tries over *unchanged* relations (the EDB, already-materialized
/// strata, stable SCC members) are built once and reused; only entries
/// over relations whose generation moved are rebuilt. Cloning the handle
/// shares the caches. The handle also carries the evaluation's
/// [`WcojMode`], so a session-level `set_wcoj` reaches every evaluator
/// the session spawns (fixpoint workers, transactions, incremental
/// restarts) through the plumbing the cache already rides.
///
/// The handle is `Arc`-of-locks-based and therefore `Send + Sync`: the
/// parallel stratum scheduler shares one cache across all of its worker
/// threads, and a [`crate::session::Session`] holding a handle can serve
/// queries from multiple threads concurrently. Entries are keyed on
/// relation *generations* (never reused; see `rel_core::Relation`), so a
/// concurrent reader can never be handed an index that disagrees with the
/// relation state it is evaluating against — at worst two threads build
/// the same index once each and the last write wins.
#[derive(Clone)]
pub struct SharedIndexCache(Arc<CacheState>);

struct CacheState {
    indexes: RwLock<IndexCache>,
    tries: RwLock<TrieCache>,
    wcoj: RwLock<WcojMode>,
    /// Count of leapfrog joins executed through this cache handle
    /// (diagnostics/tests: proves the WCOJ path actually routed).
    wcoj_joins: AtomicU64,
    /// Profile sink for the evaluation currently running against this
    /// handle, if one is installed (see [`crate::profile::ProfileSink`]).
    /// Contexts read it once at construction, so installing a sink
    /// affects evaluators created after the install.
    profile: RwLock<Option<Arc<ProfileSink>>>,
}

impl Default for SharedIndexCache {
    fn default() -> Self {
        SharedIndexCache::with_wcoj(WcojMode::from_env())
    }
}

impl std::fmt::Debug for SharedIndexCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SharedIndexCache({} indexes, {} tries, wcoj {:?})",
            self.read().len(),
            self.tries_read().len(),
            self.wcoj_mode()
        )
    }
}

impl SharedIndexCache {
    /// A fresh cache with an explicit WCOJ routing mode (the default
    /// constructor reads `REL_WCOJ`).
    pub fn with_wcoj(mode: WcojMode) -> Self {
        SharedIndexCache(Arc::new(CacheState {
            indexes: RwLock::new(HashMap::new()),
            tries: RwLock::new(HashMap::new()),
            wcoj: RwLock::new(mode),
            wcoj_joins: AtomicU64::new(0),
            profile: RwLock::new(None),
        }))
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, IndexCache> {
        self.0.indexes.read().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn write(&self) -> std::sync::RwLockWriteGuard<'_, IndexCache> {
        self.0.indexes.write().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn tries_read(&self) -> std::sync::RwLockReadGuard<'_, TrieCache> {
        self.0.tries.read().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn tries_write(&self) -> std::sync::RwLockWriteGuard<'_, TrieCache> {
        self.0.tries.write().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// The current WCOJ routing mode.
    pub fn wcoj_mode(&self) -> WcojMode {
        *self.0.wcoj.read().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Change the WCOJ routing mode for every evaluator sharing this
    /// handle.
    pub fn set_wcoj(&self, mode: WcojMode) {
        *self.0.wcoj.write().unwrap_or_else(std::sync::PoisonError::into_inner) = mode;
    }

    /// How many leapfrog joins evaluators sharing this handle have run.
    pub fn wcoj_join_count(&self) -> u64 {
        self.0.wcoj_joins.load(Ordering::Relaxed)
    }

    pub(crate) fn note_wcoj_join(&self) {
        self.0.wcoj_joins.fetch_add(1, Ordering::Relaxed);
    }

    /// Install (or clear) the profile sink evaluators created against
    /// this handle will tick. One sink belongs to one profiled
    /// evaluation; the caller clears it when the evaluation finishes.
    pub(crate) fn set_profile(&self, sink: Option<Arc<ProfileSink>>) {
        *self.0.profile.write().unwrap_or_else(std::sync::PoisonError::into_inner) = sink;
    }

    /// The currently installed profile sink, if any.
    pub(crate) fn profile(&self) -> Option<Arc<ProfileSink>> {
        self.0.profile.read().unwrap_or_else(std::sync::PoisonError::into_inner).clone()
    }

    /// Number of cached entries, indexes and tries combined
    /// (diagnostics/tests).
    pub fn len(&self) -> usize {
        self.read().len() + self.tries_read().len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.read().is_empty() && self.tries_read().is_empty()
    }

    /// Drop every entry that no longer matches the given relation state
    /// (the relation is gone — e.g. a Δ overlay — or its generation has
    /// moved on). The fixpoint engine calls this when a materialize run
    /// finishes, so a long-lived session retains only indexes that the
    /// *next* run can actually hit, instead of accumulating dead ones.
    pub fn prune_stale(&self, rels: &BTreeMap<Name, Relation>) {
        self.write().retain(|(name, _, _), (built_gen, _)| {
            rels.get(name).map(Relation::generation) == Some(*built_gen)
        });
        self.tries_write().retain(|(name, _), (built_gen, _)| {
            rels.get(name).map(Relation::generation) == Some(*built_gen)
        });
    }

    /// Drop every index over any of the named relations that was built
    /// against a generation other than the relation's *current* one in
    /// `db`. [`crate::session::Session::transact`] calls this for the
    /// relations a committed delta touched: their generations moved, so
    /// pre-commit entries can never be served again (the generation check
    /// in lookups guarantees that) — invalidating them eagerly keeps the
    /// cache from carrying dead weight until a later materialize run
    /// happens to prune it, while indexes already rebuilt at the
    /// committed generation (by the transaction's own post-state
    /// evaluation) stay warm for the next query.
    pub fn invalidate_stale_relations<'n>(
        &self,
        names: impl IntoIterator<Item = &'n Name>,
        db: &rel_core::Database,
    ) {
        let touched: std::collections::BTreeSet<&Name> = names.into_iter().collect();
        if touched.is_empty() {
            return;
        }
        self.write().retain(|(name, _, _), (built_gen, _)| {
            !touched.contains(name)
                || db.get(name).map(Relation::generation) == Some(*built_gen)
        });
        self.tries_write().retain(|(name, _), (built_gen, _)| {
            !touched.contains(name)
                || db.get(name).map(Relation::generation) == Some(*built_gen)
        });
    }

    /// The generations the cached indexes and tries over `name` were
    /// built from (diagnostics/tests).
    pub fn generations_for(&self, name: &str) -> Vec<u64> {
        self.read()
            .iter()
            .filter(|((n, _, _), _)| &**n == name)
            .map(|(_, (built_gen, _))| *built_gen)
            .chain(
                self.tries_read()
                    .iter()
                    .filter(|((n, _), _)| &**n == name)
                    .map(|(_, (built_gen, _))| *built_gen),
            )
            .collect()
    }
}

impl<'a> EvalCtx<'a> {
    /// New context over the given relation state, with a private index
    /// cache.
    pub fn new(module: &'a Module, rels: &'a BTreeMap<Name, Relation>) -> Self {
        EvalCtx::with_cache(module, rels, SharedIndexCache::default())
    }

    /// New context sharing a caller-owned index cache (generation-keyed,
    /// so it is safe to reuse across different relation states).
    pub fn with_cache(
        module: &'a Module,
        rels: &'a BTreeMap<Name, Relation>,
        cache: SharedIndexCache,
    ) -> Self {
        let profile = cache.profile();
        EvalCtx {
            module,
            rels,
            demand_memo: RwLock::new(HashMap::new()),
            demand_stacks: Mutex::new(HashMap::new()),
            indexes: cache,
            profile,
        }
    }

    // ------------------------------------------------------------------
    // Instrumentation: dispatch-point counters. Each is one predictable
    // branch on the process-wide gate plus an `Option` check for the
    // per-query sink — a no-op when both are off.
    // ------------------------------------------------------------------

    #[inline]
    fn note_fused_rule(&self) {
        if metrics::enabled() {
            metrics::registry().fused_rules.incr();
        }
        if let Some(sink) = &self.profile {
            sink.note_fused_rule();
        }
    }

    #[inline]
    fn note_env_rule(&self) {
        if metrics::enabled() {
            metrics::registry().env_rules.incr();
        }
        if let Some(sink) = &self.profile {
            sink.note_env_rule();
        }
    }

    #[inline]
    fn note_binary_join(&self) {
        if metrics::enabled() {
            metrics::registry().binary_join_dispatches.incr();
        }
        if let Some(sink) = &self.profile {
            sink.note_binary_join();
        }
    }

    #[inline]
    fn note_wcoj_dispatch(&self) {
        if metrics::enabled() {
            metrics::registry().wcoj_dispatches.incr();
        }
        if let Some(sink) = &self.profile {
            sink.note_wcoj_join();
        }
    }

    #[inline]
    fn note_index_lookup(&self, built: bool) {
        if metrics::enabled() {
            let r = metrics::registry();
            if built { r.index_builds.incr() } else { r.index_reuses.incr() }
        }
        if let Some(sink) = &self.profile {
            if built {
                sink.note_index_build();
            } else {
                sink.note_index_reuse();
            }
        }
    }

    #[inline]
    fn note_trie_lookup(&self, built: bool) {
        if metrics::enabled() {
            let r = metrics::registry();
            if built { r.trie_builds.incr() } else { r.trie_reuses.incr() }
        }
        if let Some(sink) = &self.profile {
            if built {
                sink.note_trie_build();
            } else {
                sink.note_trie_reuse();
            }
        }
    }

    fn relation(&self, pred: &Name) -> Relation {
        self.rels.get(pred).cloned().unwrap_or_default()
    }

    fn pred_mode(&self, pred: &Name) -> EvalMode {
        self.module
            .pred_info
            .get(pred)
            .map(|i| i.mode.clone())
            .unwrap_or(EvalMode::Materialize)
    }

    fn is_demand(&self, pred: &Name) -> Option<usize> {
        match self.pred_mode(pred) {
            EvalMode::Demand { bound_prefix } => Some(bound_prefix),
            EvalMode::Materialize => None,
        }
    }

    // ------------------------------------------------------------------
    // Rules
    // ------------------------------------------------------------------

    /// Evaluate one rule from a seed environment, returning full head
    /// tuples. Derived tuples are buffered and the relation is built once
    /// (sort + dedup bulk construction) instead of tree-inserting each.
    pub fn eval_rule(&self, rule: &Rule, seed: Env) -> RelResult<Relation> {
        let mut out = Vec::new();
        self.eval_rule_into(rule, &rule.body, seed, &mut out)?;
        Ok(Relation::from_tuples(out))
    }

    fn eval_rule_into(
        &self,
        rule: &Rule,
        body: &RExpr,
        seed: Env,
        out: &mut Vec<Tuple>,
    ) -> RelResult<()> {
        let mut gen: Vec<Formula> = Vec::new();
        for p in &rule.params {
            if let AbsParam::In(v, dom) = p {
                gen.push(Formula::Member { term: Term::Var(*v), of: dom.clone() });
            }
        }
        match body {
            RExpr::Union(branches) => {
                for br in branches {
                    self.eval_rule_into(rule, br, seed.clone(), out)?;
                }
                Ok(())
            }
            RExpr::OfFormula(f) => {
                if self.try_fused_formula(rule, f, &seed, out) {
                    self.note_fused_rule();
                    return Ok(());
                }
                self.note_env_rule();
                gen.push((**f).clone());
                let envs = self.eval_formula(&Formula::conj(gen), vec![seed])?;
                for env in envs {
                    if let Some(t) = env.head_tuple(&rule.params) {
                        out.push(t);
                    }
                }
                Ok(())
            }
            RExpr::Where { body: inner, cond } => {
                self.note_env_rule();
                gen.push((**cond).clone());
                let envs = self.eval_formula(&Formula::conj(gen), vec![seed])?;
                for env in envs {
                    for (env2, rel) in self.eval_open(inner, &env)? {
                        self.emit(&rule.params, &env2, &rel, out)?;
                    }
                }
                Ok(())
            }
            other => {
                if let Some(res) = self.try_fused_open(rule, other, &seed, out) {
                    self.note_fused_rule();
                    return res;
                }
                self.note_env_rule();
                let envs = self.eval_formula(&Formula::conj(gen), vec![seed])?;
                for env in envs {
                    for (env2, rel) in self.eval_open(other, &env)? {
                        self.emit(&rule.params, &env2, &rel, out)?;
                    }
                }
                Ok(())
            }
        }
    }

    /// Fused columnar rule kernel. When the head is plain first-order
    /// variables and the body formula is (possibly `Exists`-wrapped
    /// conjunctions of) one or two positive atoms over stored relations
    /// with variable-only, atom-distinct arguments, evaluate the whole
    /// rule as one permuted-trie projection / merge join
    /// ([`project_emit`] / [`merge_join_emit`]): head tuples are emitted
    /// straight from trie cells, bypassing environment batches, per-row
    /// `Env` clones, and `head_tuple` re-packing entirely. The tries come
    /// from the generation-keyed cache, so a stable relation (e.g. the
    /// EDB side of a semi-naive delta join) is sorted once per state and
    /// reused across fixpoint iterations.
    ///
    /// Variable-only atoms keep this exact: variable–variable unification
    /// is strict value equality (no Int/Float promotion — that applies
    /// only to constants, which are ineligible here), matching the trie's
    /// strict cell order, so the emitted head set is identical to the
    /// generic path's. Existential variables are projected away by the
    /// head plan itself; the final [`Relation::from_tuples`] build
    /// canonicalizes order and duplicates either way.
    ///
    /// Gated on the columnar switch (`REL_COLUMNAR=0` keeps the legacy
    /// row pipeline) and off under [`WcojMode::Force`], which exists to
    /// drag every eligible conjunction through the leapfrog kernel for
    /// testing. Returns `false` (emitting nothing) when the shape is
    /// ineligible and the generic evaluator should proceed.
    fn try_fused_formula(
        &self,
        rule: &Rule,
        f: &Formula,
        seed: &Env,
        out: &mut Vec<Tuple>,
    ) -> bool {
        if !columnar_enabled() || self.indexes.wcoj_mode() == WcojMode::Force {
            return false;
        }
        // Only top-level materialization: a seeded env (demand evaluation,
        // constraint checking) takes the generic path.
        if (0..seed.len()).any(|v| seed.get(v as Var).is_some()) {
            return false;
        }
        // Head: plain first-order variables (repeats allowed).
        let mut head: Vec<Var> = Vec::with_capacity(rule.params.len());
        for p in &rule.params {
            let AbsParam::Val(v) = p else { return false };
            head.push(*v);
        }
        // Body: at most two positive atoms under Exists/Conj nesting.
        fn collect<'x>(f: &'x Formula, out: &mut Vec<&'x Atom>) -> bool {
            match f {
                Formula::True => true,
                Formula::Atom(a) => {
                    out.push(a);
                    out.len() <= 2
                }
                Formula::Conj(fs) => fs.iter().all(|g| collect(g, out)),
                Formula::Exists { tuple_vars, body, .. } => {
                    tuple_vars.is_empty() && collect(body, out)
                }
                _ => false,
            }
        }
        let mut atoms: Vec<&Atom> = Vec::new();
        if !collect(f, &mut atoms) || atoms.is_empty() {
            return false;
        }
        // Atoms: stored relations (not builtins, not demand-driven) applied
        // to distinct variables.
        let mut infos: Vec<(&Name, Vec<Var>)> = Vec::with_capacity(atoms.len());
        for a in &atoms {
            if a.args.is_empty()
                || bsig::lookup(&a.pred).is_some()
                || self.is_demand(&a.pred).is_some()
            {
                return false;
            }
            let mut vars: Vec<Var> = Vec::with_capacity(a.args.len());
            for t in &a.args {
                let Term::Var(v) = t else { return false };
                if vars.contains(v) {
                    return false; // repeated variable: in-atom equality
                }
                vars.push(*v);
            }
            infos.push((&a.pred, vars));
        }
        // Every head variable must be bound by some atom.
        if head
            .iter()
            .any(|hv| !infos.iter().any(|(_, vs)| vs.contains(hv)))
        {
            return false;
        }
        // A full column permutation leading with `first` (atom positions,
        // deduped), followed by the remaining positions in source order.
        fn perm_from(first: &[usize], arity: usize) -> Vec<usize> {
            let mut perm: Vec<usize> = Vec::with_capacity(arity);
            for &p in first {
                if !perm.contains(&p) {
                    perm.push(p);
                }
            }
            for p in 0..arity {
                if !perm.contains(&p) {
                    perm.push(p);
                }
            }
            perm
        }
        match infos.as_slice() {
            // Projection: sort the trie head-variables-first and emit.
            [(pred, vars)] => {
                let positions: Vec<usize> = head
                    .iter()
                    .map(|hv| vars.iter().position(|v| v == hv).expect("covered"))
                    .collect();
                let perm = perm_from(&positions, vars.len());
                let trie = self.trie_for(pred, &perm);
                let depths: Vec<usize> = positions
                    .iter()
                    .map(|p| perm.iter().position(|q| q == p).expect("full perm"))
                    .collect();
                project_emit(&trie, &depths, out);
                true
            }
            // Binary join: both tries lead with the shared variables.
            [(pa, va), (pb, vb)] => {
                let join: Vec<Var> =
                    va.iter().copied().filter(|v| vb.contains(v)).collect();
                let perm_of = |vars: &[Var]| {
                    let first: Vec<usize> = join
                        .iter()
                        .map(|jv| vars.iter().position(|v| v == jv).expect("shared"))
                        .collect();
                    perm_from(&first, vars.len())
                };
                let (perm_a, perm_b) = (perm_of(va), perm_of(vb));
                let ta = self.trie_for(pa, &perm_a);
                let tb = self.trie_for(pb, &perm_b);
                let plan: Vec<(bool, usize)> = head
                    .iter()
                    .map(|hv| {
                        if let Some(p) = va.iter().position(|v| v == hv) {
                            (false, perm_a.iter().position(|&q| q == p).expect("full perm"))
                        } else {
                            let p = vb.iter().position(|v| v == hv).expect("covered");
                            (true, perm_b.iter().position(|&q| q == p).expect("full perm"))
                        }
                    })
                    .collect();
                merge_join_emit(&ta, &tb, join.len(), &plan, out);
                true
            }
            _ => false,
        }
    }

    /// Fused columnar kernels for the two aggregation rule shapes the
    /// stdlib's `sum[R[x]] <++ d`-style definitions lower to. Returns
    /// `None` when the shape is ineligible (generic evaluator proceeds)
    /// and `Some(result)` when the kernel handled the rule.
    ///
    /// Both kernels exploit the same invariant as [`Self::try_fused_formula`]:
    /// stored relations iterate in lexicographic tuple order, so groups
    /// of a common prefix are contiguous runs and domain/override merges
    /// are single sorted walks — no per-row `Env` clones, no `BTreeMap`
    /// of group environments, no intermediate suffix `Relation`s.
    fn try_fused_open(
        &self,
        rule: &Rule,
        body: &RExpr,
        seed: &Env,
        out: &mut Vec<Tuple>,
    ) -> Option<RelResult<()>> {
        if !columnar_enabled() || self.indexes.wcoj_mode() == WcojMode::Force {
            return None;
        }
        // Only top-level materialization; a seeded env takes the generic path.
        if (0..seed.len()).any(|v| seed.get(v as Var).is_some()) {
            return None;
        }
        match body {
            RExpr::Reduce { op, input, intro } => {
                self.fused_grouped_reduce(rule, op, input, *intro, out)
            }
            RExpr::LeftOverride(a, b) => self.fused_override_default(rule, a, b, out),
            _ => None,
        }
    }

    /// Grouped-reduce kernel: `def p[x…] : Reduce(op, P[x…])` where the
    /// head is plain distinct variables, `op` is a builtin with a fold
    /// rule, and the input is a prefix application of a stored relation
    /// on exactly the head variables.
    ///
    /// The generic path re-derives the grouping the storage order already
    /// provides: it clones an `Env` per input row, collects suffix
    /// relations in a `BTreeMap<Env, Relation>`, then folds each group's
    /// last column. Since `P` is sorted lexicographically and prefix
    /// matching on unbound variables is strict value equality, groups are
    /// exactly the runs of equal `k`-prefix, in the same order, and each
    /// group's suffixes arrive already sorted — so the fold visits values
    /// in the generic path's order (bit-identical float folds, same first
    /// error on a type mismatch). Empty groups cannot arise (every run has
    /// a row), matching `reduce over ∅ = ∅`.
    ///
    /// Run boundaries and fold inputs are read from the typed columnar
    /// projection when present (no per-row tuple-header chasing); rows are
    /// the fallback.
    fn fused_grouped_reduce(
        &self,
        rule: &Rule,
        op: &RExpr,
        input: &RExpr,
        intro: (Var, Var),
        out: &mut Vec<Tuple>,
    ) -> Option<RelResult<()>> {
        // Head: plain distinct variables.
        let mut head: Vec<Var> = Vec::with_capacity(rule.params.len());
        for p in &rule.params {
            let AbsParam::Val(v) = p else { return None };
            if head.contains(v) {
                return None;
            }
            head.push(*v);
        }
        // Group keys survive the `intro` clearing that forms them.
        if head.iter().any(|v| *v >= intro.0 && *v < intro.1) {
            return None;
        }
        // Op: a builtin with a canonical fold step.
        let RExpr::Pred(opname) = op else { return None };
        let canonical = bsig::canonical(opname)?;
        // Input: the head variables, in order, prefix-applied to a stored
        // relation of uniform arity with a non-empty suffix.
        let RExpr::PApp { pred, args } = input else { return None };
        if args.len() != head.len() {
            return None;
        }
        for (t, v) in args.iter().zip(&head) {
            let Term::Var(av) = t else { return None };
            if av != v {
                return None;
            }
        }
        if bsig::lookup(pred).is_some() || self.is_demand(pred).is_some() {
            return None;
        }
        let rel = self.relation(pred);
        let k = head.len();
        let n = rel.uniform_arity()?;
        if n <= k {
            return None;
        }
        Some((|| {
            if let Some(c) = rel.columnar() {
                let cols = c.cols();
                let rows = c.len();
                let mut start = 0;
                for i in 1..=rows {
                    let boundary = i == rows
                        || (0..k).any(|j| {
                            cols[j].cmp_rows(i, &cols[j], start) != std::cmp::Ordering::Equal
                        });
                    if !boundary {
                        continue;
                    }
                    let mut acc = cols[n - 1].value(start);
                    for r in start + 1..i {
                        acc = builtins::fold_step(canonical, &acc, &cols[n - 1].value(r))?;
                    }
                    let mut vals: Vec<Value> = (0..k).map(|j| cols[j].value(start)).collect();
                    vals.push(acc);
                    out.push(Tuple::from(vals));
                    start = i;
                }
            } else {
                let mut run: Option<(&Tuple, Value)> = None;
                for t in rel.iter() {
                    match run.take() {
                        Some((first, acc)) if first.values()[..k] == t.values()[..k] => {
                            let acc = builtins::fold_step(canonical, &acc, &t.values()[n - 1])?;
                            run = Some((first, acc));
                        }
                        prev => {
                            if let Some((first, acc)) = prev {
                                let mut vals = first.values()[..k].to_vec();
                                vals.push(acc);
                                out.push(Tuple::from(vals));
                            }
                            run = Some((t, t.values()[n - 1].clone()));
                        }
                    }
                }
                if let Some((first, acc)) = run {
                    let mut vals = first.values()[..k].to_vec();
                    vals.push(acc);
                    out.push(Tuple::from(vals));
                }
            }
            Ok(())
        })())
    }

    /// Override-with-default kernel: `def p[x in D] : P[x] <++ (c)` — the
    /// lowering of `agg[…] <++ default`. For each `x` in the unary domain
    /// `D`, emit `P`'s rows for `x` when any exist, else `(x, c)`.
    ///
    /// The generic path evaluates a `Member` formula per domain element
    /// and runs the full `LeftOverride` open-expression machinery per
    /// environment (prefix re-matching `P`, per-group suffix relations, a
    /// singleton build, an override scan). With a single-constant right
    /// side the override key is the empty prefix, so "left side wins"
    /// degenerates to a non-emptiness test — one sorted merge of `D`
    /// against `P`'s first column. Bound-variable prefix matching is
    /// strict equality, matching the merge's comparisons.
    fn fused_override_default(
        &self,
        rule: &Rule,
        a: &RExpr,
        b: &RExpr,
        out: &mut Vec<Tuple>,
    ) -> Option<RelResult<()>> {
        let [AbsParam::In(v, dom)] = rule.params.as_slice() else {
            return None;
        };
        let RExpr::Pred(dname) = dom.as_ref() else { return None };
        if bsig::lookup(dname).is_some() || self.is_demand(dname).is_some() {
            return None;
        }
        let RExpr::PApp { pred, args } = a else { return None };
        let [Term::Var(av)] = args.as_slice() else { return None };
        if av != v {
            return None;
        }
        if bsig::lookup(pred).is_some() || self.is_demand(pred).is_some() {
            return None;
        }
        let RExpr::Singleton(ts) = b else { return None };
        let [Term::Const(c)] = ts.as_slice() else { return None };
        let dom_rel = self.relation(dname);
        if dom_rel.uniform_arity() != Some(1) {
            return None;
        }
        let p_rel = self.relation(pred);
        let n = p_rel.uniform_arity()?;
        if n < 2 {
            return None;
        }
        let prows: Vec<&Tuple> = p_rel.iter().collect();
        let mut pi = 0;
        for d in dom_rel.iter() {
            let x = &d.values()[0];
            while pi < prows.len() && prows[pi].values()[0] < *x {
                pi += 1;
            }
            let mut j = pi;
            while j < prows.len() && prows[j].values()[0] == *x {
                out.push(prows[j].clone());
                j += 1;
            }
            if j == pi {
                out.push(Tuple::from(vec![x.clone(), c.clone()]));
            }
            pi = j;
        }
        Some(Ok(()))
    }

    fn emit(
        &self,
        params: &[AbsParam],
        env: &Env,
        rel: &Relation,
        out: &mut Vec<Tuple>,
    ) -> RelResult<()> {
        if rel.is_empty() {
            return Ok(());
        }
        let Some(head) = env.head_tuple(params) else {
            return Err(RelError::internal(
                "rule head variable unbound at emission (safety analysis gap)",
            ));
        };
        for t in rel.iter() {
            out.push(head.concat(t));
        }
        Ok(())
    }

    /// Demand-driven (tabled) evaluation of a predicate with a bound
    /// prefix. Returns full head tuples whose first columns equal `prefix`.
    pub fn eval_demand(&self, pred: &Name, prefix: &[Value]) -> RelResult<Arc<Relation>> {
        let key = (pred.clone(), prefix.to_vec());
        if let Some(hit) = self.lock_memo().get(&key) {
            return Ok(Arc::clone(hit));
        }
        {
            let mut stacks = self.lock_stacks();
            let stack = stacks.entry(std::thread::current().id()).or_default();
            if stack.contains(&key) {
                return Err(RelError::Stratify(format!(
                    "cyclic demand-driven recursion on `{pred}` with arguments {prefix:?} \
                     (top-down evaluation requires acyclic demands)"
                )));
            }
            if stack.len() > DEMAND_DEPTH_CAP {
                return Err(RelError::Divergent {
                    relation: pred.to_string(),
                    iterations: DEMAND_DEPTH_CAP,
                });
            }
            stack.push(key.clone());
        }
        let result = (|| {
            let mut out = Relation::new();
            for rule in self.module.rules_for(pred) {
                let mut seed = Env::new(rule.vars.len());
                let mut ok = true;
                for (p, v) in rule.params.iter().zip(prefix) {
                    match p {
                        AbsParam::Fixed(c) => {
                            if !c.numeric_eq(v) {
                                ok = false;
                                break;
                            }
                        }
                        AbsParam::Val(var) | AbsParam::In(var, _) => {
                            // Repeated head variables must receive equal
                            // prefix values.
                            if let Some(existing) = seed.value(*var) {
                                if existing != v {
                                    ok = false;
                                    break;
                                }
                            }
                            seed.bind(*var, EnvVal::Val(v.clone()));
                        }
                        AbsParam::Tup(_) => {
                            return Err(RelError::unsafe_expr(format!(
                                "demand evaluation of `{pred}` through a tuple-variable \
                                 parameter is not supported"
                            )));
                        }
                    }
                }
                if !ok {
                    continue;
                }
                out.absorb(&self.eval_rule(rule, seed)?);
            }
            // Keep only tuples actually matching the prefix (Fixed params
            // already filtered; In-domains may have narrowed).
            let filtered: Relation =
                out.into_tuples().into_iter().filter(|t| t.starts_with(prefix)).collect();
            Ok(Arc::new(filtered))
        })();
        {
            let mut stacks = self.lock_stacks();
            let tid = std::thread::current().id();
            let stack = stacks.entry(tid).or_default();
            stack.pop();
            if stack.is_empty() {
                stacks.remove(&tid); // chain finished: don't leak per-thread slots
            }
        }
        let rel = result?;
        self.demand_memo
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert(key, Arc::clone(&rel));
        Ok(rel)
    }

    fn lock_memo(&self) -> std::sync::RwLockReadGuard<'_, HashMap<DemandKey, Arc<Relation>>> {
        self.demand_memo.read().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn lock_stacks(
        &self,
    ) -> std::sync::MutexGuard<'_, HashMap<std::thread::ThreadId, Vec<DemandKey>>> {
        self.demand_stacks.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Membership check for a demand predicate against a fully ground
    /// value tuple. Handles tuple-variable parameters by enumerating the
    /// splits of `values` over the parameter list.
    fn demand_check(&self, pred: &Name, values: &[Value]) -> RelResult<bool> {
        let full = Tuple::from(values.to_vec());
        for rule in self.module.rules_for(pred) {
            let terms: Vec<Term> = rule
                .params
                .iter()
                .map(|p| match p {
                    AbsParam::Val(v) | AbsParam::In(v, _) => Term::Var(*v),
                    AbsParam::Tup(v) => Term::TupleVar(*v),
                    AbsParam::Fixed(c) => Term::Const(c.clone()),
                })
                .collect();
            let mut seeds = Vec::new();
            rec_match(&terms, values, &Env::new(rule.vars.len()), &mut seeds);
            for (seed, suffix) in seeds {
                if !suffix.is_empty() {
                    continue;
                }
                if self.eval_rule(rule, seed)?.contains(&full) {
                    return Ok(true);
                }
            }
        }
        Ok(false)
    }

    // ------------------------------------------------------------------
    // Formulas
    // ------------------------------------------------------------------

    /// Evaluate a formula as a generator/filter over environments.
    pub fn eval_formula(&self, f: &Formula, envs: Vec<Env>) -> RelResult<Vec<Env>> {
        if envs.is_empty() {
            return Ok(envs);
        }
        match f {
            Formula::True => Ok(envs),
            Formula::False => Ok(vec![]),
            Formula::Conj(items) => self.eval_conj(items, envs),
            Formula::Disj(branches) => {
                // Sort + dedup matches the previous BTreeSet order exactly
                // (deterministic iteration) at a fraction of the cost.
                let mut out: Vec<Env> = Vec::new();
                for br in branches {
                    out.extend(self.eval_formula(br, envs.clone())?);
                }
                out.sort_unstable();
                out.dedup();
                Ok(out)
            }
            Formula::Not(inner) => {
                let mut out = Vec::with_capacity(envs.len());
                for env in envs {
                    if self.eval_formula(inner, vec![env.clone()])?.is_empty() {
                        out.push(env);
                    }
                }
                Ok(out)
            }
            Formula::Atom(a) => self.exec_atom(&a.pred, &a.args, envs),
            Formula::DynAtom { rel, args } => {
                let mut out = Vec::new();
                for env in envs {
                    for (env1, r) in self.eval_open(rel, &env)? {
                        for t in r.iter() {
                            for (env2, suffix) in self.match_prefix(args, t, &env1) {
                                if suffix.is_empty() {
                                    out.push(env2);
                                }
                            }
                        }
                    }
                }
                Ok(out)
            }
            Formula::Member { term, of } => self.exec_member(term, of, envs),
            Formula::Cmp { op, lhs, rhs } => self.exec_cmp(*op, lhs, rhs, envs),
            Formula::Exists { body, intro, .. } => {
                let inner = self.eval_formula(body, envs)?;
                let mut out: Vec<Env> = inner
                    .into_iter()
                    .map(|mut env| {
                        env.unbind_range(intro.0, intro.1);
                        env
                    })
                    .collect();
                out.sort_unstable();
                out.dedup();
                Ok(out)
            }
            Formula::OfExpr(e) => {
                let mut out = Vec::new();
                for env in envs {
                    for (env1, rel) in self.eval_open(e, &env)? {
                        if rel.is_true() {
                            out.push(env1);
                        }
                    }
                }
                Ok(out)
            }
        }
    }

    /// Greedy scheduling of a conjunction: filters first, then — when a
    /// group of positive atoms qualifies (see [`Self::plan_wcoj`]) — the
    /// leapfrog worst-case-optimal join over the whole group, otherwise
    /// the smallest-relation generator; stuck scheduling is a bug the
    /// safety analysis should have caught.
    fn eval_conj(&self, items: &[Formula], mut envs: Vec<Env>) -> RelResult<Vec<Env>> {
        let mut pending: Vec<&Formula> = Vec::with_capacity(items.len());
        fn flatten<'x>(items: &'x [Formula], out: &mut Vec<&'x Formula>) {
            for f in items {
                match f {
                    Formula::Conj(inner) => flatten(inner, out),
                    other => out.push(other),
                }
            }
        }
        flatten(items, &mut pending);

        // Once WCOJ planning fails for this conjunction it can never
        // start succeeding: scheduling only consumes conjuncts and binds
        // variables, so eligible components can only shrink. Caching the
        // failure keeps the planner from paying eligibility + union-find
        // on every subsequent pick.
        let mut wcoj_failed = false;

        while !pending.is_empty() {
            if envs.is_empty() {
                return Ok(envs);
            }
            let bound = batch_bound(&envs);
            // Negation deferral: a `Not` must wait until no *other*
            // pending conjunct can still bind one of its variables —
            // running `not S(x)` before `R(x)` binds `x` would negate the
            // wrong thing. The "other conjuncts" reference set is the
            // same for every pending `Not` (its own refs are excluded by
            // construction — a `Not` never appears in it), so it is
            // computed once per scheduling iteration instead of once per
            // negation (the old per-`Not` recomputation made each pick
            // O(n²) in the conjunction size).
            let mut positive_refs: Option<BTreeSet<Var>> = None;
            if pending.iter().any(|f| matches!(f, Formula::Not(_))) {
                let mut refs = BTreeSet::new();
                for g in &pending {
                    if !matches!(g, Formula::Not(_)) {
                        formula_refs(g, &mut refs);
                    }
                }
                refs.retain(|v| !bound.contains(v));
                positive_refs = Some(refs);
            }
            // Choose the next conjunct: prefer pure filters, then the
            // cheapest generator.
            let mut choice: Option<(usize, u64)> = None; // (index, cost)
            for (i, f) in pending.iter().enumerate() {
                if let Formula::Not(inner) = f {
                    let free = positive_refs.as_ref().expect("computed when a Not is pending");
                    let mut inner_refs = BTreeSet::new();
                    formula_refs(inner, &mut inner_refs);
                    if inner_refs.iter().any(|v| free.contains(v)) {
                        continue; // defer: a shared variable is still free
                    }
                }
                match self.schedule(f, &bound) {
                    Sched::No => {}
                    Sched::Filter => {
                        choice = Some((i, 0));
                        break;
                    }
                    Sched::Generate(cost) => {
                        if choice.map(|(_, c)| cost < c).unwrap_or(true) {
                            choice = Some((i, cost.max(1)));
                        }
                    }
                }
            }
            let Some((idx, cost)) = choice else {
                return Err(RelError::internal(format!(
                    "evaluation stuck: no conjunct schedulable among {} pending \
                     (safety analysis gap)",
                    pending.len()
                )));
            };
            // With no filter runnable and a generator about to be picked,
            // see whether a whole group of positive atoms can go through
            // the worst-case-optimal path instead of one pairwise step.
            if cost > 0 && !wcoj_failed {
                if let Some(group) = self.plan_wcoj(&pending, &bound) {
                    let picked: Vec<&Formula> = group.iter().map(|&i| pending[i]).collect();
                    for &i in group.iter().rev() {
                        pending.remove(i);
                    }
                    let atoms: Vec<(&Name, &[Term])> = picked
                        .iter()
                        .map(|f| self.wcoj_atom(f).expect("planned atoms stay eligible"))
                        .collect();
                    envs = self.exec_wcoj(&atoms, &bound, envs)?;
                    continue;
                }
                wcoj_failed = true;
            }
            let f = pending.remove(idx);
            if cost > 0 && matches!(f, Formula::Atom(_)) {
                self.note_binary_join();
            }
            envs = self.eval_formula(f, envs)?;
        }
        Ok(envs)
    }

    // ------------------------------------------------------------------
    // Worst-case-optimal join planning (leapfrog triejoin)
    // ------------------------------------------------------------------

    /// Is this conjunct a WCOJ-eligible atom? Eligible means: a positive
    /// atom over a materialized (or Δ-overlay) relation — not a builtin,
    /// not demand-driven — whose arguments are first-order variables
    /// (distinct within the atom) or non-numeric constants. Numeric
    /// constants are excluded because the scheduler matches them with
    /// Int/Float-promoting equality, while trie seeks use the strict
    /// value order; strings/symbols/entities compare identically either
    /// way. Returns the atom's predicate and argument list.
    fn wcoj_atom<'x>(&self, f: &'x Formula) -> Option<(&'x Name, &'x [Term])> {
        let Formula::Atom(a) = f else { return None };
        if a.args.is_empty()
            || bsig::lookup(&a.pred).is_some()
            || self.is_demand(&a.pred).is_some()
        {
            return None;
        }
        let mut seen = BTreeSet::new();
        for t in &a.args {
            match t {
                Term::Var(v) => {
                    if !seen.insert(*v) {
                        return None; // repeated variable: needs in-atom equality
                    }
                }
                Term::Const(c) => {
                    if c.is_number() {
                        return None;
                    }
                }
                Term::TupleVar(_) => return None,
            }
        }
        Some((&a.pred, &a.args))
    }

    /// Select a group of pending conjuncts for the WCOJ path, returning
    /// their indexes (ascending). In [`WcojMode::Auto`], the largest
    /// variable-connected component of eligible atoms is chosen when it
    /// has at least [`WCOJ_MIN_ATOMS`] members (two atoms are connected
    /// when they share a variable unbound in the current batch — the
    /// genuinely joining shapes); [`WcojMode::Force`] takes every
    /// eligible atom. Returns `None` when the binary-join scheduler
    /// should proceed instead.
    fn plan_wcoj(&self, pending: &[&Formula], bound: &BTreeSet<Var>) -> Option<Vec<usize>> {
        let mode = self.indexes.wcoj_mode();
        let min_atoms = mode.min_atoms();
        if min_atoms == usize::MAX {
            return None;
        }
        let elig: Vec<(usize, BTreeSet<Var>)> = pending
            .iter()
            .enumerate()
            .filter_map(|(i, f)| {
                self.wcoj_atom(f).map(|(_, args)| {
                    let vars = args
                        .iter()
                        .filter_map(|t| match t {
                            Term::Var(v) if !bound.contains(v) => Some(*v),
                            _ => None,
                        })
                        .collect();
                    (i, vars)
                })
            })
            .collect();
        if elig.len() < min_atoms {
            return None;
        }
        if mode == WcojMode::Force {
            return Some(elig.into_iter().map(|(i, _)| i).collect());
        }
        // Union-find over the eligible atoms, connected by shared free
        // variables.
        let mut parent: Vec<usize> = (0..elig.len()).collect();
        fn find(parent: &mut [usize], i: usize) -> usize {
            let mut root = i;
            while parent[root] != root {
                root = parent[root];
            }
            let mut cur = i;
            while parent[cur] != root {
                let next = parent[cur];
                parent[cur] = root;
                cur = next;
            }
            root
        }
        for a in 0..elig.len() {
            for b in a + 1..elig.len() {
                if !elig[a].1.is_disjoint(&elig[b].1) {
                    let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
                    if ra != rb {
                        parent[ra] = rb;
                    }
                }
            }
        }
        let mut components: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (i, (pending_idx, _)) in elig.iter().enumerate() {
            let root = find(&mut parent, i);
            components.entry(root).or_default().push(*pending_idx);
        }
        // Largest component wins; ties resolve to the earliest conjunct
        // (deterministic — BTreeMap order is by root, and roots carry the
        // first member's index ordering closely enough once sizes tie).
        let best = components
            .into_values()
            .max_by(|a, b| a.len().cmp(&b.len()).then(b[0].cmp(&a[0])))?;
        (best.len() >= min_atoms).then_some(best)
    }

    /// Evaluate a group of positive atoms as one leapfrog triejoin,
    /// extending each environment of the batch with every satisfying
    /// binding — semantically identical to scheduling the atoms through
    /// the pairwise path (the set of produced environments is the same;
    /// intra-batch order may differ, which no downstream consumer
    /// observes because results land in sorted relations).
    ///
    /// The global variable order is: batch-bound variables, then constant
    /// columns (each pinned by a one-tuple relation), then free variables
    /// most-shared-first. Atom relations are permuted into that order and
    /// fetched from the generation-keyed trie cache, so across fixpoint
    /// iterations, repeated queries, and scheduler workers each sorted
    /// trie is built exactly once per relation state; the per-environment
    /// work is a handful of cursor seeks, not tuple copies.
    fn exec_wcoj(
        &self,
        atoms: &[(&Name, &[Term])],
        bound: &BTreeSet<Var>,
        envs: Vec<Env>,
    ) -> RelResult<Vec<Env>> {
        enum Slot {
            Var(Var),
            Const(Value),
        }
        // 1. Collect variable roles.
        let mut bound_vars: BTreeSet<Var> = BTreeSet::new();
        let mut free_count: BTreeMap<Var, usize> = BTreeMap::new();
        for (_, args) in atoms {
            for t in *args {
                match t {
                    Term::Var(v) if bound.contains(v) => {
                        bound_vars.insert(*v);
                    }
                    Term::Var(v) => *free_count.entry(*v).or_insert(0) += 1,
                    Term::Const(_) => {}
                    Term::TupleVar(_) => unreachable!("excluded by wcoj_atom"),
                }
            }
        }
        // 2. Global join order.
        let mut order: Vec<Slot> = bound_vars.iter().map(|v| Slot::Var(*v)).collect();
        let mut const_slots: BTreeMap<(usize, usize), usize> = BTreeMap::new();
        for (ai, (_, args)) in atoms.iter().enumerate() {
            for (ci, t) in args.iter().enumerate() {
                if let Term::Const(c) = t {
                    const_slots.insert((ai, ci), order.len());
                    order.push(Slot::Const(c.clone()));
                }
            }
        }
        let mut free: Vec<(usize, Var)> = free_count.into_iter().map(|(v, c)| (c, v)).collect();
        free.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        order.extend(free.into_iter().map(|(_, v)| Slot::Var(v)));
        let slot_of: BTreeMap<Var, usize> = order
            .iter()
            .enumerate()
            .filter_map(|(i, s)| match s {
                Slot::Var(v) => Some((*v, i)),
                Slot::Const(_) => None,
            })
            .collect();
        // 3. Per-atom column permutation + cached trie.
        let mut tries: Vec<(Arc<SortedRel>, Vec<usize>)> = Vec::with_capacity(atoms.len());
        for (ai, (pred, args)) in atoms.iter().enumerate() {
            let mut cols: Vec<(usize, usize)> = args
                .iter()
                .enumerate()
                .map(|(ci, t)| match t {
                    Term::Var(v) => (slot_of[v], ci),
                    Term::Const(_) => (const_slots[&(ai, ci)], ci),
                    Term::TupleVar(_) => unreachable!("excluded by wcoj_atom"),
                })
                .collect();
            cols.sort_unstable();
            let perm: Vec<usize> = cols.iter().map(|&(_, ci)| ci).collect();
            let vars: Vec<usize> = cols.iter().map(|&(slot, _)| slot).collect();
            let trie = self.trie_for(pred, &perm);
            if trie.is_empty() {
                // A required positive conjunct over ∅: the conjunction is ∅.
                return Ok(Vec::new());
            }
            tries.push((trie, vars));
        }
        self.indexes.note_wcoj_join();
        self.note_wcoj_dispatch();
        // 4. Constant pins are shared across the batch; per-environment
        // pins add one singleton atom per variable the environment binds.
        // The trie + constant part of the atom list is identical for
        // every environment — build it once (JoinAtom is Copy, so the
        // per-env list is a memcpy plus the pins).
        let const_pins: Vec<(SortedRel, [usize; 1])> = order
            .iter()
            .enumerate()
            .filter_map(|(i, s)| match s {
                Slot::Const(c) => {
                    Some((SortedRel::new(vec![Tuple::from(vec![c.clone()])]), [i]))
                }
                Slot::Var(_) => None,
            })
            .collect();
        let mut base: Vec<JoinAtom<'_>> = tries
            .iter()
            .map(|(trie, vars)| JoinAtom { rel: trie, vars })
            .collect();
        base.extend(const_pins.iter().map(|(rel, slot)| JoinAtom { rel, vars: slot }));
        let nvars = order.len();
        let mut out = Vec::new();
        for env in envs {
            let mut pins: Vec<(SortedRel, [usize; 1])> = Vec::new();
            for (i, s) in order.iter().enumerate() {
                if let Slot::Var(v) = s {
                    if let Some(val) = env.value(*v) {
                        pins.push((SortedRel::new(vec![Tuple::from(vec![val.clone()])]), [i]));
                    }
                }
            }
            let mut join_atoms: Vec<JoinAtom<'_>> = base.clone();
            join_atoms.extend(pins.iter().map(|(rel, slot)| JoinAtom { rel, vars: slot }));
            leapfrog_join(&mut join_atoms, nvars, &mut |vals| {
                let mut extended = env.clone();
                for (i, s) in order.iter().enumerate() {
                    if let Slot::Var(v) = s {
                        if extended.value(*v).is_none() {
                            extended.bind(*v, EnvVal::Val(vals[i].clone()));
                        }
                    }
                }
                out.push(extended);
            });
        }
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Conjunct scheduling (abstract, mirrors rel-sema::safety)
    // ------------------------------------------------------------------

    fn schedule(&self, f: &Formula, bound: &BTreeSet<Var>) -> Sched {
        match self.sched_newly(f, bound) {
            None => Sched::No,
            Some(newly) if newly.is_empty() => Sched::Filter,
            Some(_) => Sched::Generate(self.cost_estimate(f)),
        }
    }

    fn cost_estimate(&self, f: &Formula) -> u64 {
        match f {
            Formula::Atom(a) => match self.rels.get(&a.pred) {
                Some(r) => r.len() as u64,
                None => {
                    if bsig::is_builtin(&a.pred) {
                        8
                    } else if self.is_demand(&a.pred).is_some() {
                        64
                    } else {
                        0
                    }
                }
            },
            Formula::Member { of, .. } => match &**of {
                RExpr::Pred(p) => self.rels.get(p).map(|r| r.len() as u64).unwrap_or(16),
                _ => 32,
            },
            Formula::Cmp { .. } => 4,
            _ => 128,
        }
    }

    /// Abstract schedulability: `None` = cannot run; `Some(newly)` = runs
    /// binding `newly`. Mirrors `rel_sema::safety::Cx::try_run`.
    fn sched_newly(&self, f: &Formula, bound: &BTreeSet<Var>) -> Option<BTreeSet<Var>> {
        match f {
            Formula::True | Formula::False => Some(BTreeSet::new()),
            Formula::Conj(items) => {
                let mut b = bound.clone();
                let mut pending: Vec<&Formula> = items.iter().collect();
                while !pending.is_empty() {
                    let before = pending.len();
                    pending.retain(|g| match self.sched_newly(g, &b) {
                        Some(n) => {
                            b.extend(n);
                            false
                        }
                        None => true,
                    });
                    if pending.len() == before {
                        return None;
                    }
                }
                Some(&b - bound)
            }
            Formula::Disj(branches) => {
                let mut common: Option<BTreeSet<Var>> = None;
                for br in branches {
                    let n = self.sched_newly(br, bound)?;
                    common = Some(match common {
                        None => n,
                        Some(c) => &c & &n,
                    });
                }
                Some(common.unwrap_or_default())
            }
            Formula::Not(inner) => {
                self.sched_newly(inner, bound)?;
                Some(BTreeSet::new())
            }
            Formula::Atom(a) => self.sched_atom(&a.pred, &a.args, bound),
            Formula::DynAtom { rel, args } => {
                self.sched_expr(rel, bound)?;
                Some(new_vars(args, bound))
            }
            Formula::Member { term, of } => match &**of {
                RExpr::Pred(p) => {
                    if let Some(sig) = bsig::lookup(p) {
                        return (sig.type_test && term_bound_in(term, bound))
                            .then(BTreeSet::new);
                    }
                    Some(new_vars(std::slice::from_ref(term), bound))
                }
                other => {
                    let mut n = self.sched_expr(other, bound)?;
                    n.extend(new_vars(std::slice::from_ref(term), bound));
                    Some(n)
                }
            },
            Formula::Cmp { op, lhs, rhs } => {
                let l = self.sched_expr(lhs, bound);
                let r = self.sched_expr(rhs, bound);
                match (l, r) {
                    (Some(a), Some(b)) => Some(a.union(&b).copied().collect()),
                    (l, r) if *op == CmpOp::Eq => {
                        if let (RExpr::Singleton(ts), Some(rb)) = (&**lhs, &r) {
                            if let [t] = ts.as_slice() {
                                let mut out = rb.clone();
                                out.extend(new_vars(std::slice::from_ref(t), bound));
                                return Some(out);
                            }
                        }
                        if let (Some(lb), RExpr::Singleton(ts)) = (&l, &**rhs) {
                            if let [t] = ts.as_slice() {
                                let mut out = lb.clone();
                                out.extend(new_vars(std::slice::from_ref(t), bound));
                                return Some(out);
                            }
                        }
                        None
                    }
                    _ => None,
                }
            }
            Formula::Exists { vars, tuple_vars, body, .. } => {
                let inner = self.sched_newly(body, bound)?;
                let mut all = bound.clone();
                all.extend(inner.iter().copied());
                if !vars.iter().chain(tuple_vars).all(|v| all.contains(v)) {
                    return None;
                }
                let mut newly = inner;
                for v in vars.iter().chain(tuple_vars) {
                    newly.remove(v);
                }
                Some(newly)
            }
            Formula::OfExpr(e) => self.sched_expr(e, bound),
        }
    }

    fn sched_atom(&self, pred: &Name, args: &[Term], bound: &BTreeSet<Var>) -> Option<BTreeSet<Var>> {
        if let Some(sig) = bsig::lookup(pred) {
            if args.len() + 1 == sig.arity {
                // Partial application computing the output position:
                // all provided arguments must be bound.
                return args
                    .iter()
                    .all(|t| term_bound_in(t, bound))
                    .then(BTreeSet::new);
            }
            if args.len() != sig.arity {
                return None;
            }
            'modes: for mode in sig.modes {
                let mut newly = BTreeSet::new();
                for (c, t) in mode.chars().zip(args) {
                    match c {
                        'b' => {
                            if !term_bound_in(t, bound) {
                                continue 'modes;
                            }
                        }
                        _ => {
                            if let Term::Var(v) = t {
                                if !bound.contains(v) {
                                    newly.insert(*v);
                                }
                            }
                        }
                    }
                }
                return Some(newly);
            }
            return None;
        }
        if let Some(k) = self.is_demand(pred) {
            if args.iter().any(Term::is_tuple_var) {
                // Tuple-variable args can't be aligned with the bound
                // prefix statically: run as a fully-bound filter.
                return args
                    .iter()
                    .all(|t| term_bound_in(t, bound))
                    .then(BTreeSet::new);
            }
            if args.len() < k || !args.iter().take(k).all(|t| term_bound_in(t, bound)) {
                return None;
            }
            return Some(new_vars(&args[k..], bound));
        }
        Some(new_vars(args, bound))
    }

    fn sched_expr(&self, e: &RExpr, bound: &BTreeSet<Var>) -> Option<BTreeSet<Var>> {
        match e {
            RExpr::Pred(p) => {
                // A bare builtin (infinite) or a demand predicate with a
                // required bound prefix cannot be used whole.
                let usable = bsig::lookup(p).is_none()
                    && !self.is_demand(p).map(|k| k > 0).unwrap_or(false);
                usable.then(BTreeSet::new)
            }
            RExpr::PApp { pred, args } => self.sched_atom(pred, args, bound),
            RExpr::DynPApp { rel, args } => {
                let mut n = self.sched_expr(rel, bound)?;
                n.extend(new_vars(args, bound));
                Some(n)
            }
            RExpr::Product(es) => {
                let mut b = bound.clone();
                let mut pending: Vec<&RExpr> = es.iter().collect();
                while !pending.is_empty() {
                    let before = pending.len();
                    pending.retain(|x| match self.sched_expr(x, &b) {
                        Some(n) => {
                            b.extend(n);
                            false
                        }
                        None => true,
                    });
                    if pending.len() == before {
                        return None;
                    }
                }
                Some(&b - bound)
            }
            RExpr::Union(es) => {
                let mut common: Option<BTreeSet<Var>> = None;
                for x in es {
                    let n = self.sched_expr(x, bound)?;
                    common = Some(match common {
                        None => n,
                        Some(c) => &c & &n,
                    });
                }
                Some(common.unwrap_or_default())
            }
            RExpr::Singleton(ts) => ts
                .iter()
                .all(|t| term_bound_in(t, bound))
                .then(BTreeSet::new),
            RExpr::Where { body, cond } => {
                let n = self.sched_newly(cond, bound)?;
                let mut b = bound.clone();
                b.extend(n.iter().copied());
                let n2 = self.sched_expr(body, &b)?;
                let mut out = n;
                out.extend(n2);
                Some(out)
            }
            RExpr::Abstract { params, body, .. } => {
                let mut members: Vec<Formula> = Vec::new();
                for p in params {
                    if let AbsParam::In(v, dom) = p {
                        members.push(Formula::Member { term: Term::Var(*v), of: dom.clone() });
                    }
                }
                let param_vars: BTreeSet<Var> = params.iter().filter_map(AbsParam::var).collect();
                let inner = match &**body {
                    RExpr::OfFormula(f) => {
                        members.push((**f).clone());
                        self.sched_newly(&Formula::conj(members), bound)?
                    }
                    RExpr::Where { body: vb, cond } => {
                        members.push((**cond).clone());
                        let n = self.sched_newly(&Formula::conj(members), bound)?;
                        let mut b = bound.clone();
                        b.extend(n.iter().copied());
                        let n2 = self.sched_expr(vb, &b)?;
                        n.union(&n2).copied().collect()
                    }
                    other => {
                        let n = self.sched_newly(&Formula::conj(members), bound)?;
                        let mut b = bound.clone();
                        b.extend(n.iter().copied());
                        let n2 = self.sched_expr(other, &b)?;
                        n.union(&n2).copied().collect()
                    }
                };
                let mut all = bound.clone();
                all.extend(inner.iter().copied());
                if !param_vars.iter().all(|v| all.contains(v)) {
                    return None;
                }
                let mut newly = inner;
                for v in &param_vars {
                    newly.remove(v);
                }
                Some(newly)
            }
            RExpr::Reduce { op, input, .. } => {
                if !matches!(&**op, RExpr::Pred(_)) {
                    self.sched_expr(op, bound)?;
                }
                self.sched_expr(input, bound)
            }
            RExpr::BuiltinApp { args, .. } => {
                let mut newly = BTreeSet::new();
                for a in args {
                    let mut b = bound.clone();
                    b.extend(newly.iter().copied());
                    newly.extend(self.sched_expr(a, &b)?);
                }
                Some(newly)
            }
            RExpr::DotJoin(a, b) | RExpr::LeftOverride(a, b) => {
                let na = self.sched_expr(a, bound)?;
                let nb = self.sched_expr(b, bound)?;
                Some(na.union(&nb).copied().collect())
            }
            RExpr::OfFormula(f) => self.sched_newly(f, bound),
        }
    }

    // ------------------------------------------------------------------
    // Atom execution
    // ------------------------------------------------------------------

    fn exec_atom(&self, pred: &Name, args: &[Term], envs: Vec<Env>) -> RelResult<Vec<Env>> {
        // Builtins.
        if bsig::lookup(pred).is_some() {
            let mut out = Vec::new();
            for env in envs {
                let inputs: Vec<Option<Value>> = args.iter().map(|t| env.term_value(t)).collect();
                for tuple in builtins::solve(bsig::canonical(pred).expect("checked"), &inputs)? {
                    if let Some(env2) = unify_values(args, &tuple, &env) {
                        out.push(env2);
                    }
                }
            }
            return Ok(out);
        }
        // Demand-driven predicates.
        if let Some(k) = self.is_demand(pred) {
            let mut out = Vec::new();
            let has_tuple_vars = args.iter().any(Term::is_tuple_var);
            for env in envs {
                if has_tuple_vars {
                    // Fully-bound filter mode: splice all args into a value
                    // tuple and check membership rule by rule (the callee's
                    // own parameters may include tuple variables, so the
                    // positional-prefix table cannot be used).
                    let mut vals = Vec::new();
                    for t in args {
                        if !env.splice_term(t, &mut vals) {
                            return Err(RelError::internal(format!(
                                "demand argument of `{pred}` unbound at runtime"
                            )));
                        }
                    }
                    if self.demand_check(pred, &vals)? {
                        out.push(env);
                    }
                    continue;
                }
                let mut prefix = Vec::with_capacity(k);
                for t in args.iter().take(k) {
                    match env.term_value(t) {
                        Some(v) => prefix.push(v),
                        None => {
                            return Err(RelError::internal(format!(
                                "demand argument of `{pred}` unbound at runtime"
                            )))
                        }
                    }
                }
                let rel = self.eval_demand(pred, &prefix)?;
                for t in rel.iter() {
                    for (env2, suffix) in self.match_prefix(args, t, &env) {
                        if suffix.is_empty() {
                            out.push(env2);
                        }
                    }
                }
            }
            return Ok(out);
        }
        // Materialized relation: index on bound positions when the atom is
        // tuple-variable-free.
        let has_tuple_vars = args.iter().any(Term::is_tuple_var);
        if !has_tuple_vars && !envs.is_empty() {
            let bound = batch_bound(&envs);
            let key_positions: Vec<usize> = args
                .iter()
                .enumerate()
                .filter(|(_, t)| match t {
                    Term::Const(_) => true,
                    Term::Var(v) => bound.contains(v),
                    Term::TupleVar(_) => false,
                })
                .map(|(i, _)| i)
                .collect();
            let index = self.index_for(pred, &key_positions, args.len());
            let mut out = Vec::new();
            for env in envs {
                let mut key = Vec::with_capacity(key_positions.len());
                let mut ok = true;
                for &i in &key_positions {
                    match env.term_value(&args[i]) {
                        Some(v) => key.push(v),
                        None => {
                            ok = false;
                            break;
                        }
                    }
                }
                if !ok {
                    // This env lacks a binding the batch generally has —
                    // fall back to a scan for it.
                    let rel = self.relation(pred);
                    for t in rel.iter() {
                        if let Some(env2) = self.unify_atom(args, t, &env) {
                            out.push(env2);
                        }
                    }
                    continue;
                }
                for t in index.get(&key) {
                    if let Some(env2) = self.unify_atom(args, t, &env) {
                        out.push(env2);
                    }
                }
            }
            return Ok(out);
        }
        // Tuple-variable matching: scan with split enumeration.
        let rel = self.relation(pred);
        let mut out = Vec::new();
        for env in envs {
            for t in rel.iter() {
                for (env2, suffix) in self.match_prefix(args, t, &env) {
                    if suffix.is_empty() {
                        out.push(env2);
                    }
                }
            }
        }
        Ok(out)
    }

    /// Build (or fetch) a hash index of `pred` keyed on `positions`,
    /// restricted to tuples of exactly `arity`. Cached entries are keyed
    /// on the relation's generation, so an index survives for as long as
    /// the relation is unchanged — across fixpoint iterations and even
    /// across materialize calls when the cache handle is shared.
    fn index_for(&self, pred: &Name, positions: &[usize], arity: usize) -> Arc<TupleIndex> {
        let rel = self.rels.get(pred);
        let generation = rel.map(Relation::generation).unwrap_or(0);
        let cache_key = (pred.clone(), positions.to_vec(), arity);
        if let Some((built_gen, hit)) = self.indexes.read().get(&cache_key) {
            // A generation-stale entry falls through to the rebuild below
            // and is counted as a build (miss), never a reuse.
            if *built_gen == generation {
                self.note_index_lookup(false);
                return Arc::clone(hit);
            }
        }
        self.note_index_lookup(true);
        let rows = rel.cloned().unwrap_or_default();
        let mut map: HashMap<Vec<Value>, Vec<u32>> = HashMap::new();
        for (pos, t) in rows.as_slice().iter().enumerate() {
            if t.arity() != arity {
                continue;
            }
            let k: Vec<Value> = positions.iter().map(|&i| t.values()[i].clone()).collect();
            map.entry(k).or_default().push(pos as u32);
        }
        let arc = Arc::new(TupleIndex { rows, map });
        self.indexes
            .write()
            .insert(cache_key, (generation, Arc::clone(&arc)));
        arc
    }

    /// Build (or fetch) the sorted trie of `pred` with columns permuted
    /// by `perm` (only tuples of arity `perm.len()` participate — the
    /// atom's arity). Cached generation-keyed alongside the hash indexes:
    /// the permutation sort runs once per relation state and the
    /// resulting [`SortedRel`] is shared read-only across fixpoint
    /// iterations, session queries, and scheduler worker threads —
    /// previously every leapfrog caller re-sorted the whole relation per
    /// join.
    fn trie_for(&self, pred: &Name, perm: &[usize]) -> Arc<SortedRel> {
        let rel = self.rels.get(pred);
        let generation = rel.map(Relation::generation).unwrap_or(0);
        let cache_key = (pred.clone(), perm.to_vec());
        if let Some((built_gen, hit)) = self.indexes.tries_read().get(&cache_key) {
            // Same stale-rebuild-counts-as-miss rule as `index_for`.
            if *built_gen == generation {
                self.note_trie_lookup(false);
                return Arc::clone(hit);
            }
        }
        self.note_trie_lookup(true);
        let trie = Arc::new(match rel {
            Some(r) => SortedRel::permuted(r, perm),
            None => SortedRel::new(Vec::new()),
        });
        self.indexes
            .tries_write()
            .insert(cache_key, (generation, Arc::clone(&trie)));
        trie
    }

    /// Unify tuple-variable-free args against a tuple.
    fn unify_atom(&self, args: &[Term], t: &Tuple, env: &Env) -> Option<Env> {
        if t.arity() != args.len() {
            return None;
        }
        unify_values(args, t.values(), env)
    }

    /// Match `args` as a prefix of tuple `t`, enumerating tuple-variable
    /// splits. Returns `(env, suffix)` pairs (suffix = values beyond the
    /// matched prefix; empty for full applications).
    fn match_prefix<'t>(
        &self,
        args: &[Term],
        t: &'t Tuple,
        env: &Env,
    ) -> Vec<(Env, &'t [Value])> {
        let mut out = Vec::new();
        rec_match(args, t.values(), env, &mut out);
        out
    }

    // ------------------------------------------------------------------
    // Member / Cmp
    // ------------------------------------------------------------------

    fn exec_member(&self, term: &Term, of: &RExpr, envs: Vec<Env>) -> RelResult<Vec<Env>> {
        // Builtin type tests.
        if let RExpr::Pred(p) = of {
            if let Some(sig) = bsig::lookup(p) {
                if sig.type_test {
                    let mut out = Vec::new();
                    for env in envs {
                        let Some(v) = env.term_value(term) else {
                            return Err(RelError::internal(
                                "type-test argument unbound at runtime",
                            ));
                        };
                        if !builtins::solve(sig.name, &[Some(v)])?.is_empty() {
                            out.push(env);
                        }
                    }
                    return Ok(out);
                }
                return Err(RelError::unsafe_expr(format!(
                    "builtin `{p}` cannot be used as a membership domain"
                )));
            }
            // Finite named relation: behaves like a unary atom.
            return self.exec_atom(p, std::slice::from_ref(term), envs);
        }
        let mut out = Vec::new();
        for env in envs {
            for (env1, rel) in self.eval_open(of, &env)? {
                for t in rel.iter() {
                    if t.arity() != 1 {
                        continue;
                    }
                    if let Some(env2) =
                        unify_values(std::slice::from_ref(term), t.values(), &env1)
                    {
                        out.push(env2);
                    }
                }
            }
        }
        Ok(out)
    }

    fn exec_cmp(
        &self,
        op: CmpOp,
        lhs: &RExpr,
        rhs: &RExpr,
        envs: Vec<Env>,
    ) -> RelResult<Vec<Env>> {
        let mut out = Vec::new();
        for env in envs {
            let bound = env_bound(&env);
            let l_ok = self.sched_expr(lhs, &bound).is_some();
            let r_ok = self.sched_expr(rhs, &bound).is_some();
            match (l_ok, r_ok) {
                (true, true) => {
                    for (env1, l) in self.eval_open(lhs, &env)? {
                        for (env2, r) in self.eval_open(rhs, &env1)? {
                            if rel_cmp_holds(op, &l, &r) {
                                out.push(env2);
                            }
                        }
                    }
                }
                (false, true) if op == CmpOp::Eq => {
                    let RExpr::Singleton(ts) = lhs else {
                        return Err(stuck_cmp());
                    };
                    let [t] = ts.as_slice() else { return Err(stuck_cmp()) };
                    for (env1, r) in self.eval_open(rhs, &env)? {
                        for tup in r.iter() {
                            if tup.arity() == 1 {
                                if let Some(env2) =
                                    unify_values(std::slice::from_ref(t), tup.values(), &env1)
                                {
                                    out.push(env2);
                                }
                            }
                        }
                    }
                }
                (true, false) if op == CmpOp::Eq => {
                    let RExpr::Singleton(ts) = rhs else {
                        return Err(stuck_cmp());
                    };
                    let [t] = ts.as_slice() else { return Err(stuck_cmp()) };
                    for (env1, l) in self.eval_open(lhs, &env)? {
                        for tup in l.iter() {
                            if tup.arity() == 1 {
                                if let Some(env2) =
                                    unify_values(std::slice::from_ref(t), tup.values(), &env1)
                                {
                                    out.push(env2);
                                }
                            }
                        }
                    }
                }
                _ => return Err(stuck_cmp()),
            }
        }
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Open expression evaluation
    // ------------------------------------------------------------------

    /// Evaluate a relation-valued expression under `env`, possibly
    /// extending it (binding free variables). Returns `(env', relation)`
    /// pairs — one per binding of the expression's outer free variables.
    pub fn eval_open(&self, e: &RExpr, env: &Env) -> RelResult<Vec<(Env, Relation)>> {
        match e {
            RExpr::Pred(p) => {
                if bsig::lookup(p).is_some() {
                    return Err(RelError::unsafe_expr(format!(
                        "builtin relation `{p}` is infinite and cannot be materialized"
                    )));
                }
                if let Some(k) = self.is_demand(p) {
                    if k == 0 {
                        return Ok(vec![(env.clone(), (*self.eval_demand(p, &[])?).clone())]);
                    }
                    return Err(RelError::unsafe_expr(format!(
                        "demand-driven relation `{p}` used without bound arguments"
                    )));
                }
                Ok(vec![(env.clone(), self.relation(p))])
            }
            RExpr::PApp { pred, args } => self.open_papp(pred, args, env),
            RExpr::DynPApp { rel, args } => {
                let mut out = Vec::new();
                for (env1, r) in self.eval_open(rel, env)? {
                    let mut grouped: BTreeMap<Env, Relation> = BTreeMap::new();
                    for t in r.iter() {
                        for (env2, suffix) in self.match_prefix(args, t, &env1) {
                            grouped
                                .entry(env2)
                                .or_default()
                                .insert(Tuple::from(suffix.to_vec()));
                        }
                    }
                    out.extend(grouped);
                }
                Ok(out)
            }
            RExpr::Product(es) => self.open_product(es, env),
            RExpr::Union(es) => {
                let mut rel = Relation::new();
                for x in es {
                    for (_, r) in self.eval_open(x, env)? {
                        rel.absorb(&r);
                    }
                }
                Ok(vec![(env.clone(), rel)])
            }
            RExpr::Singleton(ts) => {
                let mut vals = Vec::with_capacity(ts.len());
                for t in ts {
                    if !env.splice_term(t, &mut vals) {
                        return Err(RelError::internal(
                            "singleton term unbound at runtime (safety analysis gap)",
                        ));
                    }
                }
                Ok(vec![(env.clone(), Relation::singleton(Tuple::from(vals)))])
            }
            RExpr::Where { body, cond } => {
                let envs = self.eval_formula(cond, vec![env.clone()])?;
                let mut out = Vec::new();
                for env1 in envs {
                    out.extend(self.eval_open(body, &env1)?);
                }
                Ok(out)
            }
            RExpr::OfFormula(f) => {
                let envs = self.eval_formula(f, vec![env.clone()])?;
                Ok(envs.into_iter().map(|e| (e, Relation::true_rel())).collect())
            }
            RExpr::Abstract { params, body, intro } => self.open_abstract(params, body, *intro, env),
            RExpr::Reduce { op, input, intro } => self.open_reduce(op, input, *intro, env),
            RExpr::BuiltinApp { op, args } => self.open_builtin_app(op, args, env),
            RExpr::DotJoin(a, b) => {
                let mut out = Vec::new();
                for (env1, ra) in self.eval_open(a, env)? {
                    for (env2, rb) in self.eval_open(b, &env1)? {
                        let mut rel = Relation::new();
                        for ta in ra.iter() {
                            if ta.is_empty() {
                                continue;
                            }
                            let join = &ta.values()[ta.arity() - 1];
                            for tb in rb.iter() {
                                if tb.is_empty() {
                                    continue;
                                }
                                if tb.values()[0] == *join {
                                    let mut vals = ta.values()[..ta.arity() - 1].to_vec();
                                    vals.extend(tb.values()[1..].iter().cloned());
                                    rel.insert(Tuple::from(vals));
                                }
                            }
                        }
                        out.push((env2, rel));
                    }
                }
                Ok(out)
            }
            RExpr::LeftOverride(a, b) => {
                let mut out = Vec::new();
                for (env1, ra) in self.eval_open(a, env)? {
                    for (env2, rb) in self.eval_open(b, &env1)? {
                        let mut rel = ra.clone();
                        for tb in rb.iter() {
                            if tb.is_empty() {
                                continue;
                            }
                            let key = &tb.values()[..tb.arity() - 1];
                            if !ra.iter().any(|ta| ta.starts_with(key)) {
                                rel.insert(tb.clone());
                            }
                        }
                        out.push((env2, rel));
                    }
                }
                Ok(out)
            }
        }
    }

    fn open_papp(&self, pred: &Name, args: &[Term], env: &Env) -> RelResult<Vec<(Env, Relation)>> {
        // Builtins: partial application computes outputs.
        if let Some(sig) = bsig::lookup(pred) {
            let canonical = bsig::canonical(pred).expect("checked");
            let mut inputs: Vec<Option<Value>> =
                args.iter().map(|t| env.term_value(t)).collect();
            if args.len() == sig.arity {
                let results = builtins::solve(canonical, &inputs)?;
                let rel = if results.is_empty() {
                    Relation::false_rel()
                } else {
                    Relation::true_rel()
                };
                return Ok(vec![(env.clone(), rel)]);
            }
            if args.len() == sig.arity - 1 {
                inputs.push(None);
                let mut rel = Relation::new();
                for t in builtins::solve(canonical, &inputs)? {
                    rel.insert(Tuple::from(vec![t[sig.arity - 1].clone()]));
                }
                return Ok(vec![(env.clone(), rel)]);
            }
            return Err(RelError::unsafe_expr(format!(
                "partial application of builtin `{pred}` with {} arguments \
                 (arity {})",
                args.len(),
                sig.arity
            )));
        }
        // Demand predicates.
        if let Some(k) = self.is_demand(pred) {
            let mut prefix = Vec::with_capacity(k);
            for t in args.iter().take(k) {
                match env.term_value(t) {
                    Some(v) => prefix.push(v),
                    None => {
                        return Err(RelError::internal(format!(
                            "demand argument of `{pred}` unbound at runtime"
                        )))
                    }
                }
            }
            let rel = self.eval_demand(pred, &prefix)?;
            return Ok(self.group_suffixes(args, rel.iter(), env));
        }
        // Materialized.
        let rel = self.relation(pred);
        Ok(self.group_suffixes(args, rel.iter(), env))
    }

    /// Match args as prefixes over `tuples`, grouping suffixes by the
    /// resulting environment extension.
    fn group_suffixes<'t>(
        &self,
        args: &[Term],
        tuples: impl Iterator<Item = &'t Tuple>,
        env: &Env,
    ) -> Vec<(Env, Relation)> {
        let mut grouped: BTreeMap<Env, Relation> = BTreeMap::new();
        for t in tuples {
            for (env2, suffix) in self.match_prefix(args, t, env) {
                grouped
                    .entry(env2)
                    .or_default()
                    .insert(Tuple::from(suffix.to_vec()));
            }
        }
        if grouped.is_empty() {
            // A fully-bound application over no matches is simply empty.
            let all_bound = args.iter().all(|t| env.term_bound(t));
            if all_bound {
                return vec![(env.clone(), Relation::new())];
            }
        }
        grouped.into_iter().collect()
    }

    fn open_product(&self, es: &[RExpr], env: &Env) -> RelResult<Vec<(Env, Relation)>> {
        // Greedy factor scheduling with per-factor relation parts.
        let mut states: Vec<(Env, BTreeMap<usize, Relation>)> =
            vec![(env.clone(), BTreeMap::new())];
        let mut pending: Vec<usize> = (0..es.len()).collect();
        while !pending.is_empty() {
            if states.is_empty() {
                return Ok(vec![]);
            }
            let bound = env_bound(&states[0].0);
            let pos = pending
                .iter()
                .position(|&i| self.sched_expr(&es[i], &bound).is_some())
                .ok_or_else(|| {
                    RelError::internal("product factors unschedulable (safety gap)")
                })?;
            let i = pending.remove(pos);
            let mut next = Vec::with_capacity(states.len());
            for (env1, parts) in states {
                for (env2, rel) in self.eval_open(&es[i], &env1)? {
                    let mut p = parts.clone();
                    p.insert(i, rel);
                    next.push((env2, p));
                }
            }
            states = next;
        }
        Ok(states
            .into_iter()
            .map(|(env1, parts)| {
                let mut rel = Relation::true_rel();
                for i in 0..es.len() {
                    rel = rel.product(parts.get(&i).expect("all factors evaluated"));
                }
                (env1, rel)
            })
            .collect())
    }

    fn open_abstract(
        &self,
        params: &[AbsParam],
        body: &RExpr,
        intro: (Var, Var),
        env: &Env,
    ) -> RelResult<Vec<(Env, Relation)>> {
        let mut members: Vec<Formula> = Vec::new();
        for p in params {
            if let AbsParam::In(v, dom) = p {
                members.push(Formula::Member { term: Term::Var(*v), of: dom.clone() });
            }
        }
        let mut grouped: BTreeMap<Env, Relation> = BTreeMap::new();
        let route = |env2: Env, head_params: &[AbsParam], rel: Relation,
                         grouped: &mut BTreeMap<Env, Relation>|
         -> RelResult<()> {
            if rel.is_empty() {
                return Ok(());
            }
            let Some(head) = env2.head_tuple(head_params) else {
                return Err(RelError::internal(
                    "abstraction parameter unbound at emission",
                ));
            };
            let key = env2.cleared(intro.0, intro.1);
            let slot = grouped.entry(key).or_default();
            for t in rel.iter() {
                slot.insert(head.concat(t));
            }
            Ok(())
        };
        match body {
            RExpr::OfFormula(f) => {
                members.push((**f).clone());
                let envs = self.eval_formula(&Formula::conj(members), vec![env.clone()])?;
                for env2 in envs {
                    route(env2, params, Relation::true_rel(), &mut grouped)?;
                }
            }
            RExpr::Where { body: vb, cond } => {
                members.push((**cond).clone());
                let envs = self.eval_formula(&Formula::conj(members), vec![env.clone()])?;
                for env1 in envs {
                    for (env2, rel) in self.eval_open(vb, &env1)? {
                        route(env2, params, rel, &mut grouped)?;
                    }
                }
            }
            RExpr::Union(branches) => {
                // Evaluate each branch independently under the domains.
                let envs = self.eval_formula(&Formula::conj(members), vec![env.clone()])?;
                for env1 in envs {
                    for br in branches {
                        for (env2, rel) in self.eval_open(br, &env1)? {
                            route(env2, params, rel, &mut grouped)?;
                        }
                    }
                }
            }
            other => {
                let envs = self.eval_formula(&Formula::conj(members), vec![env.clone()])?;
                for env1 in envs {
                    for (env2, rel) in self.eval_open(other, &env1)? {
                        route(env2, params, rel, &mut grouped)?;
                    }
                }
            }
        }
        if grouped.is_empty() {
            return Ok(vec![(env.clone(), Relation::new())]);
        }
        Ok(grouped.into_iter().collect())
    }

    fn open_reduce(
        &self,
        op: &RExpr,
        input: &RExpr,
        intro: (Var, Var),
        env: &Env,
    ) -> RelResult<Vec<(Env, Relation)>> {
        // Group input pieces by the environment outside the input's scope.
        let mut groups: BTreeMap<Env, Relation> = BTreeMap::new();
        for (env1, rel) in self.eval_open(input, env)? {
            let key = env1.cleared(intro.0, intro.1);
            groups.entry(key).or_default().absorb(&rel);
        }
        let mut out = Vec::with_capacity(groups.len());
        for (genv, rel) in groups {
            if rel.is_empty() {
                continue; // reduce over ∅ is ∅ (§5.2: unpaid orders vanish)
            }
            let folded = self.fold(op, &rel, &genv)?;
            out.push((genv, Relation::singleton(Tuple::from(vec![folded]))));
        }
        Ok(out)
    }

    /// Fold the last column of `rel` with `op` (sorted order — deterministic;
    /// the paper requires associativity/commutativity for order-independence).
    fn fold(&self, op: &RExpr, rel: &Relation, env: &Env) -> RelResult<Value> {
        let values = rel.last_column();
        if values.is_empty() {
            return Err(RelError::Reduce("reduce over an empty relation".into()));
        }
        // Fast path: builtin op by name.
        if let RExpr::Pred(p) = op {
            if let Some(canonical) = bsig::canonical(p) {
                let mut acc = values[0].clone();
                for v in &values[1..] {
                    acc = builtins::fold_step(canonical, &acc, v)?;
                }
                return Ok(acc);
            }
            // User-defined op relation: apply as a binary function via
            // demand or materialized lookup.
            let mut acc = values[0].clone();
            for v in &values[1..] {
                acc = self.apply_binary(p, &acc, v)?;
            }
            return Ok(acc);
        }
        // General case: evaluate the op to a finite relation and use it as
        // a function table.
        let pairs = self.eval_open(op, env)?;
        let table: Relation = pairs.into_iter().flat_map(|(_, r)| r.into_tuples()).collect();
        let mut acc = values[0].clone();
        for v in &values[1..] {
            let suffix = table.partial_apply(&[acc.clone(), v.clone()]);
            let mut it = suffix.iter();
            match (it.next(), it.next()) {
                (Some(t), None) if t.arity() == 1 => acc = t.values()[0].clone(),
                _ => {
                    return Err(RelError::Reduce(format!(
                        "reduce op is not a binary function on ({acc}, {v})"
                    )))
                }
            }
        }
        Ok(acc)
    }

    /// Apply a named predicate as a binary function: `p(a, b, result)`.
    fn apply_binary(&self, pred: &Name, a: &Value, b: &Value) -> RelResult<Value> {
        let prefix = [a.clone(), b.clone()];
        let suffix: Relation = if let Some(k) = self.is_demand(pred) {
            if k > 2 {
                return Err(RelError::Reduce(format!(
                    "reduce op `{pred}` needs {k} bound arguments"
                )));
            }
            let rel = self.eval_demand(pred, &prefix[..k])?;
            rel.partial_apply(&prefix)
        } else {
            self.relation(pred).partial_apply(&prefix)
        };
        let mut it = suffix.iter();
        match (it.next(), it.next()) {
            (Some(t), None) if t.arity() == 1 => Ok(t.values()[0].clone()),
            _ => Err(RelError::Reduce(format!(
                "reduce op `{pred}` is not a binary function on ({a}, {b})"
            ))),
        }
    }

    fn open_builtin_app(
        &self,
        op: &Name,
        args: &[RExpr],
        env: &Env,
    ) -> RelResult<Vec<(Env, Relation)>> {
        // Evaluate argument sets (each a unary relation), then apply the
        // builtin to every combination, collecting outputs.
        fn rec(
            cx: &EvalCtx<'_>,
            op: &Name,
            args: &[RExpr],
            idx: usize,
            env: Env,
            chosen: &mut Vec<Value>,
            out: &mut Vec<(Env, Relation)>,
        ) -> RelResult<()> {
            if idx == args.len() {
                let mut inputs: Vec<Option<Value>> =
                    chosen.iter().cloned().map(Some).collect();
                inputs.push(None);
                let mut rel = Relation::new();
                for t in builtins::solve(op, &inputs)? {
                    rel.insert(Tuple::from(vec![t[t.len() - 1].clone()]));
                }
                out.push((env, rel));
                return Ok(());
            }
            for (env1, r) in cx.eval_open(&args[idx], &env)? {
                for t in r.iter() {
                    if t.arity() != 1 {
                        continue;
                    }
                    chosen.push(t.values()[0].clone());
                    rec(cx, op, args, idx + 1, env1.clone(), chosen, out)?;
                    chosen.pop();
                }
            }
            Ok(())
        }
        let mut raw = Vec::new();
        let mut chosen = Vec::new();
        rec(self, op, args, 0, env.clone(), &mut chosen, &mut raw)?;
        // Merge relations per environment.
        let mut grouped: BTreeMap<Env, Relation> = BTreeMap::new();
        for (e, r) in raw {
            grouped.entry(e).or_default().absorb(&r);
        }
        if grouped.is_empty() {
            return Ok(vec![(env.clone(), Relation::new())]);
        }
        Ok(grouped.into_iter().collect())
    }
}

/// Does the comparison hold between two unary relations (exists-semantics)?
fn rel_cmp_holds(op: CmpOp, l: &Relation, r: &Relation) -> bool {
    for a in l.iter().filter(|t| t.arity() == 1) {
        for b in r.iter().filter(|t| t.arity() == 1) {
            let x = &a.values()[0];
            let y = &b.values()[0];
            let holds = match op {
                CmpOp::Eq => x.numeric_eq(y),
                CmpOp::Neq => !x.numeric_eq(y),
                _ => match x.numeric_cmp(y) {
                    Some(ord) => match op {
                        CmpOp::Lt => ord == std::cmp::Ordering::Less,
                        CmpOp::Le => ord != std::cmp::Ordering::Greater,
                        CmpOp::Gt => ord == std::cmp::Ordering::Greater,
                        CmpOp::Ge => ord != std::cmp::Ordering::Less,
                        _ => unreachable!(),
                    },
                    None => false,
                },
            };
            if holds {
                return true;
            }
        }
    }
    false
}

fn stuck_cmp() -> RelError {
    RelError::internal("comparison with unbound sides at runtime (safety analysis gap)")
}

/// Variables bound in *every* environment of the batch.
fn batch_bound(envs: &[Env]) -> BTreeSet<Var> {
    let Some(first) = envs.first() else { return BTreeSet::new() };
    let mut bound: BTreeSet<Var> =
        (0..first.len() as Var).filter(|v| first.is_bound(*v)).collect();
    for env in &envs[1..] {
        bound.retain(|v| env.is_bound(*v));
    }
    bound
}

fn env_bound(env: &Env) -> BTreeSet<Var> {
    (0..env.len() as Var).filter(|v| env.is_bound(*v)).collect()
}

/// All variable references in a formula (conservative, including nested
/// scopes).
fn formula_refs(f: &Formula, out: &mut BTreeSet<Var>) {
    match f {
        Formula::True | Formula::False => {}
        Formula::Conj(items) | Formula::Disj(items) => {
            for i in items {
                formula_refs(i, out);
            }
        }
        Formula::Not(inner) => formula_refs(inner, out),
        Formula::Atom(a) => term_refs(&a.args, out),
        Formula::DynAtom { rel, args } => {
            rexpr_refs(rel, out);
            term_refs(args, out);
        }
        Formula::Cmp { lhs, rhs, .. } => {
            rexpr_refs(lhs, out);
            rexpr_refs(rhs, out);
        }
        Formula::Member { term, of } => {
            term_refs(std::slice::from_ref(term), out);
            rexpr_refs(of, out);
        }
        Formula::Exists { body, intro, .. } => {
            let mut inner = BTreeSet::new();
            formula_refs(body, &mut inner);
            out.extend(inner.into_iter().filter(|v| *v < intro.0 || *v >= intro.1));
        }
        Formula::OfExpr(e) => rexpr_refs(e, out),
    }
}

fn rexpr_refs(e: &RExpr, out: &mut BTreeSet<Var>) {
    match e {
        RExpr::Pred(_) => {}
        RExpr::PApp { args, .. } => term_refs(args, out),
        RExpr::DynPApp { rel, args } => {
            rexpr_refs(rel, out);
            term_refs(args, out);
        }
        RExpr::Product(es) | RExpr::Union(es) => {
            for x in es {
                rexpr_refs(x, out);
            }
        }
        RExpr::Singleton(ts) => term_refs(ts, out),
        RExpr::Where { body, cond } => {
            rexpr_refs(body, out);
            formula_refs(cond, out);
        }
        RExpr::Abstract { params, body, intro } => {
            let mut inner = BTreeSet::new();
            for p in params {
                if let AbsParam::In(_, dom) = p {
                    rexpr_refs(dom, &mut inner);
                }
            }
            rexpr_refs(body, &mut inner);
            out.extend(inner.into_iter().filter(|v| *v < intro.0 || *v >= intro.1));
        }
        RExpr::Reduce { op, input, intro } => {
            rexpr_refs(op, out);
            let mut inner = BTreeSet::new();
            rexpr_refs(input, &mut inner);
            out.extend(inner.into_iter().filter(|v| *v < intro.0 || *v >= intro.1));
        }
        RExpr::BuiltinApp { args, .. } => {
            for a in args {
                rexpr_refs(a, out);
            }
        }
        RExpr::DotJoin(a, b) | RExpr::LeftOverride(a, b) => {
            rexpr_refs(a, out);
            rexpr_refs(b, out);
        }
        RExpr::OfFormula(f) => formula_refs(f, out),
    }
}

fn term_refs(ts: &[Term], out: &mut BTreeSet<Var>) {
    for t in ts {
        match t {
            Term::Var(v) | Term::TupleVar(v) => {
                out.insert(*v);
            }
            Term::Const(_) => {}
        }
    }
}

fn term_bound_in(t: &Term, bound: &BTreeSet<Var>) -> bool {
    match t {
        Term::Const(_) => true,
        Term::Var(v) | Term::TupleVar(v) => bound.contains(v),
    }
}

fn new_vars(ts: &[Term], bound: &BTreeSet<Var>) -> BTreeSet<Var> {
    ts.iter()
        .filter_map(|t| match t {
            Term::Var(v) | Term::TupleVar(v) if !bound.contains(v) => Some(*v),
            _ => None,
        })
        .collect()
}

/// Unify tuple-variable-free terms against exactly matching values.
fn unify_values(args: &[Term], vals: &[Value], env: &Env) -> Option<Env> {
    if args.len() != vals.len() {
        return None;
    }
    let mut out = env.clone();
    for (t, v) in args.iter().zip(vals) {
        match t {
            Term::Const(c) => {
                if !c.numeric_eq(v) {
                    return None;
                }
            }
            Term::Var(var) => match out.value(*var) {
                Some(existing) => {
                    if existing != v {
                        return None;
                    }
                }
                None => out.bind(*var, EnvVal::Val(v.clone())),
            },
            Term::TupleVar(var) => match out.get(*var) {
                Some(EnvVal::Tup(existing)) => {
                    if existing.len() != 1 || existing[0] != *v {
                        return None;
                    }
                }
                Some(EnvVal::Val(_)) => return None,
                None => out.bind(*var, EnvVal::Tup(vec![v.clone()])),
            },
        }
    }
    Some(out)
}

/// Recursive prefix matcher with tuple-variable split enumeration.
fn rec_match<'t>(args: &[Term], vals: &'t [Value], env: &Env, out: &mut Vec<(Env, &'t [Value])>) {
    let Some((first, rest)) = args.split_first() else {
        out.push((env.clone(), vals));
        return;
    };
    match first {
        Term::Const(c) => {
            if let Some(v) = vals.first() {
                if c.numeric_eq(v) {
                    rec_match(rest, &vals[1..], env, out);
                }
            }
        }
        Term::Var(var) => {
            let Some(v) = vals.first() else { return };
            match env.value(*var) {
                Some(existing) => {
                    if existing == v {
                        rec_match(rest, &vals[1..], env, out);
                    }
                }
                None => {
                    let mut e = env.clone();
                    e.bind(*var, EnvVal::Val(v.clone()));
                    rec_match(rest, &vals[1..], &e, out);
                }
            }
        }
        Term::TupleVar(var) => match env.get(*var) {
            Some(EnvVal::Tup(existing)) => {
                if vals.len() >= existing.len() && vals[..existing.len()] == existing[..] {
                    let existing_len = existing.len();
                    rec_match(rest, &vals[existing_len..], env, out);
                }
            }
            Some(EnvVal::Val(_)) => {}
            None => {
                // Try every split length; remaining fixed terms need at
                // least as many values as their count.
                let min_rest: usize = rest
                    .iter()
                    .map(|t| if t.is_tuple_var() { 0 } else { 1 })
                    .sum();
                let max_take = vals.len().saturating_sub(min_rest);
                for take in 0..=max_take {
                    let mut e = env.clone();
                    e.bind(*var, EnvVal::Tup(vals[..take].to_vec()));
                    rec_match(rest, &vals[take..], &e, out);
                }
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rel_core::tuple;
    use rel_sema::ir::Atom;

    fn ctx_fixture() -> (Module, BTreeMap<Name, Relation>) {
        let module = rel_sema::compile("def Dummy(x) : Nothing(x)").unwrap();
        let mut rels = BTreeMap::new();
        rels.insert(
            rel_core::name("E"),
            Relation::from_tuples([tuple![1, 2], tuple![2, 3], tuple![1, 3]]),
        );
        (module, rels)
    }

    #[test]
    fn atom_binds_and_filters() {
        let (module, rels) = ctx_fixture();
        let cx = EvalCtx::new(&module, &rels);
        // E(x, y) over one empty env: 3 results.
        let atom = Formula::Atom(Atom {
            pred: rel_core::name("E"),
            args: vec![Term::Var(0), Term::Var(1)],
        });
        let envs = cx.eval_formula(&atom, vec![Env::new(2)]).unwrap();
        assert_eq!(envs.len(), 3);
        // E(1, y): 2 results.
        let atom = Formula::Atom(Atom {
            pred: rel_core::name("E"),
            args: vec![Term::Const(Value::int(1)), Term::Var(1)],
        });
        let envs = cx.eval_formula(&atom, vec![Env::new(2)]).unwrap();
        assert_eq!(envs.len(), 2);
    }

    #[test]
    fn repeated_var_join() {
        let (module, rels) = ctx_fixture();
        let cx = EvalCtx::new(&module, &rels);
        // E(x, x): no loops in fixture.
        let atom = Formula::Atom(Atom {
            pred: rel_core::name("E"),
            args: vec![Term::Var(0), Term::Var(0)],
        });
        let envs = cx.eval_formula(&atom, vec![Env::new(1)]).unwrap();
        assert!(envs.is_empty());
    }

    #[test]
    fn tuple_var_split_enumeration() {
        let env = Env::new(2);
        let t = tuple![1, 2, 3];
        let mut out = Vec::new();
        // (x..., y...): as a *full* match (empty suffix) there are 4 splits
        // of a 3-tuple; as a prefix match every partial consumption also
        // appears (4 + 3 + 2 + 1 = 10).
        rec_match(
            &[Term::TupleVar(0), Term::TupleVar(1)],
            t.values(),
            &env,
            &mut out,
        );
        assert_eq!(out.len(), 10);
        let full: Vec<_> = out.iter().filter(|(_, s)| s.is_empty()).collect();
        assert_eq!(full.len(), 4);
    }

    #[test]
    fn builtin_atom_inverse_in_engine() {
        let (module, rels) = ctx_fixture();
        let cx = EvalCtx::new(&module, &rels);
        // add(x, 5, 15) with x free.
        let mut env = Env::new(1);
        env.unbind(0);
        let atom = Formula::Atom(Atom {
            pred: rel_core::name("rel_primitive_add"),
            args: vec![
                Term::Var(0),
                Term::Const(Value::int(5)),
                Term::Const(Value::int(15)),
            ],
        });
        let envs = cx.eval_formula(&atom, vec![env]).unwrap();
        assert_eq!(envs.len(), 1);
        assert_eq!(envs[0].value(0), Some(&Value::int(10)));
    }

    #[test]
    fn negation_filters() {
        let (module, rels) = ctx_fixture();
        let cx = EvalCtx::new(&module, &rels);
        // E(x, y) ∧ ¬E(y, x)
        let f = Formula::Conj(vec![
            Formula::Atom(Atom {
                pred: rel_core::name("E"),
                args: vec![Term::Var(0), Term::Var(1)],
            }),
            Formula::Not(Box::new(Formula::Atom(Atom {
                pred: rel_core::name("E"),
                args: vec![Term::Var(1), Term::Var(0)],
            }))),
        ]);
        let envs = cx.eval_formula(&f, vec![Env::new(2)]).unwrap();
        assert_eq!(envs.len(), 3); // no symmetric edges in fixture
    }

    #[test]
    fn invalidate_stale_relations_is_generation_aware() {
        let (module, rels) = ctx_fixture();
        let cache = SharedIndexCache::default();
        let cx = EvalCtx::with_cache(&module, &rels, cache.clone());
        let e = rel_core::name("E");
        cx.index_for(&e, &[0], 2);
        let built_gen = rels[&e].generation();
        assert_eq!(cache.generations_for("E"), vec![built_gen]);

        // Touched, but the current generation still matches: entry kept.
        let mut db = rel_core::Database::new();
        db.set("E", rels[&e].clone());
        cache.invalidate_stale_relations([&e], &db);
        assert_eq!(cache.generations_for("E"), vec![built_gen]);

        // Untouched name: entry kept even after E's generation moves.
        let mut moved = rels[&e].clone();
        moved.insert(tuple![9, 9]);
        db.set("E", moved);
        let f = rel_core::name("F");
        cache.invalidate_stale_relations([&f], &db);
        assert_eq!(cache.generations_for("E"), vec![built_gen]);

        // Touched with a moved generation: entry dropped.
        cache.invalidate_stale_relations([&e], &db);
        assert!(cache.generations_for("E").is_empty());
    }

    #[test]
    fn concurrent_demand_chains_use_separate_stacks() {
        // Two threads demanding the same acyclic predicate through one
        // shared EvalCtx must not see each other's in-flight keys as
        // cycles.
        let module = rel_sema::compile(
            "def addUp(n, s) : n = 0 and s = 0\n\
             def addUp(n, s) : n > 0 and s = n + addUp[n - 1]",
        )
        .unwrap();
        let rels = BTreeMap::new();
        let cx = EvalCtx::new(&module, &rels);
        let pred = rel_core::name("addUp");
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let cx = &cx;
                    let pred = &pred;
                    scope.spawn(move || cx.eval_demand(pred, &[Value::int(12)]).unwrap())
                })
                .collect();
            for h in handles {
                let rel = h.join().unwrap();
                assert_eq!(rel.len(), 1);
                assert!(rel.contains(&tuple![12, 78]));
            }
        });
    }

    fn triangle_conj() -> Formula {
        let e = |a: Var, b: Var| {
            Formula::Atom(Atom {
                pred: rel_core::name("E"),
                args: vec![Term::Var(a), Term::Var(b)],
            })
        };
        Formula::Conj(vec![e(0, 1), e(1, 2), e(0, 2)])
    }

    #[test]
    fn wcoj_triangle_matches_binary_path_and_routes() {
        let (module, rels) = ctx_fixture();
        let run = |mode: WcojMode| -> (Vec<Env>, u64) {
            let cache = SharedIndexCache::with_wcoj(mode);
            let cx = EvalCtx::with_cache(&module, &rels, cache.clone());
            let mut envs = cx.eval_formula(&triangle_conj(), vec![Env::new(3)]).unwrap();
            envs.sort_unstable();
            (envs, cache.wcoj_join_count())
        };
        let (off, off_joins) = run(WcojMode::Off);
        let (auto, auto_joins) = run(WcojMode::Auto);
        let (forced, forced_joins) = run(WcojMode::Force);
        assert_eq!(off.len(), 1, "fixture has exactly one triangle");
        assert_eq!(off, auto);
        assert_eq!(off, forced);
        assert_eq!(off_joins, 0, "Off must never touch the kernel");
        assert!(auto_joins >= 1, "a 3-atom cyclic conjunction must route in Auto");
        assert!(forced_joins >= 1);
    }

    #[test]
    fn wcoj_respects_prebound_variables() {
        // Seed the batch with a = 1 bound: the WCOJ path must pin it via
        // a singleton atom and produce exactly the binary path's answers.
        let (module, rels) = ctx_fixture();
        let mut seed = Env::new(3);
        seed.bind(0, EnvVal::Val(Value::int(1)));
        let run = |mode: WcojMode| {
            let cx =
                EvalCtx::with_cache(&module, &rels, SharedIndexCache::with_wcoj(mode));
            let mut envs = cx.eval_formula(&triangle_conj(), vec![seed.clone()]).unwrap();
            envs.sort_unstable();
            envs
        };
        assert_eq!(run(WcojMode::Off), run(WcojMode::Force));
        // A binding with no triangle: empty either way.
        let mut dead = Env::new(3);
        dead.bind(0, EnvVal::Val(Value::int(3)));
        let cx = EvalCtx::with_cache(
            &module,
            &rels,
            SharedIndexCache::with_wcoj(WcojMode::Force),
        );
        assert!(cx.eval_formula(&triangle_conj(), vec![dead]).unwrap().is_empty());
    }

    #[test]
    fn wcoj_excludes_ineligible_atoms() {
        // Repeated in-atom variables and numeric constants stay on the
        // binary path (wcoj_atom rejects them); the conjunction as a
        // whole must still agree across modes.
        let (module, rels) = ctx_fixture();
        let e = |args: Vec<Term>| {
            Formula::Atom(Atom { pred: rel_core::name("E"), args })
        };
        let f = Formula::Conj(vec![
            e(vec![Term::Var(0), Term::Var(1)]),
            e(vec![Term::Var(1), Term::Var(2)]),
            e(vec![Term::Const(Value::int(1)), Term::Var(2)]),
            e(vec![Term::Var(3), Term::Var(3)]), // no loops: empties the result
        ]);
        let run = |mode: WcojMode| {
            let cx =
                EvalCtx::with_cache(&module, &rels, SharedIndexCache::with_wcoj(mode));
            let mut envs = cx.eval_formula(&f, vec![Env::new(4)]).unwrap();
            envs.sort_unstable();
            envs
        };
        assert_eq!(run(WcojMode::Off), run(WcojMode::Force));
    }

    #[test]
    fn wcoj_tries_are_cached_by_generation() {
        let (module, rels) = ctx_fixture();
        let cache = SharedIndexCache::with_wcoj(WcojMode::Force);
        let cx = EvalCtx::with_cache(&module, &rels, cache.clone());
        cx.eval_formula(&triangle_conj(), vec![Env::new(3)]).unwrap();
        let after_first = cache.len();
        assert!(after_first > 0, "tries must land in the shared cache");
        let e_gen = rels[&rel_core::name("E")].generation();
        assert!(cache.generations_for("E").contains(&e_gen));
        // Same state again: every trie is served from cache, nothing new.
        cx.eval_formula(&triangle_conj(), vec![Env::new(3)]).unwrap();
        assert_eq!(cache.len(), after_first);
        // A generation bump invalidates via the usual path.
        let mut db = rel_core::Database::new();
        let mut moved = rels[&rel_core::name("E")].clone();
        moved.insert(tuple![7, 8]);
        db.set("E", moved);
        cache.invalidate_stale_relations([&rel_core::name("E")], &db);
        assert!(cache.generations_for("E").is_empty());
    }

    #[test]
    fn wcoj_mode_env_parsing() {
        // (Live reads of REL_WCOJ are covered by the CI matrix legs;
        // setting env vars here would race sibling tests.)
        assert_eq!(WcojMode::parse("0"), WcojMode::Off);
        assert_eq!(WcojMode::parse(" off "), WcojMode::Off);
        assert_eq!(WcojMode::parse("FALSE"), WcojMode::Off);
        assert_eq!(WcojMode::parse("force"), WcojMode::Force);
        assert_eq!(WcojMode::parse("always"), WcojMode::Force);
        assert_eq!(WcojMode::parse("auto"), WcojMode::Auto);
        assert_eq!(WcojMode::parse("1"), WcojMode::Auto);
        assert_eq!(WcojMode::parse(""), WcojMode::Auto);
    }

    #[test]
    fn stale_rebuild_counts_as_build_not_reuse() {
        let (module, rels) = ctx_fixture();
        let cache = SharedIndexCache::default();
        let sink = Arc::new(ProfileSink::new());
        cache.set_profile(Some(Arc::clone(&sink)));
        let cx = EvalCtx::with_cache(&module, &rels, cache.clone());
        let e = rel_core::name("E");

        // First lookups: builds.
        cx.index_for(&e, &[0], 2);
        cx.trie_for(&e, &[0, 1]);
        let c = sink.counts();
        assert_eq!((c.index_builds, c.index_reuses), (1, 0));
        assert_eq!((c.trie_builds, c.trie_reuses), (1, 0));

        // Same generation: reuses.
        cx.index_for(&e, &[0], 2);
        cx.trie_for(&e, &[0, 1]);
        let c = sink.counts();
        assert_eq!((c.index_builds, c.index_reuses), (1, 1));
        assert_eq!((c.trie_builds, c.trie_reuses), (1, 1));

        // The relation's generation moves. The stale entries still sit in
        // the cache maps, but looking them up must count as a build
        // (miss) — finding a stale entry is not a hit.
        let mut rels2 = rels.clone();
        let mut moved = rels2[&e].clone();
        moved.insert(tuple![7, 8]);
        rels2.insert(e.clone(), moved);
        let cx2 = EvalCtx::with_cache(&module, &rels2, cache.clone());
        cx2.index_for(&e, &[0], 2);
        cx2.trie_for(&e, &[0, 1]);
        let c = sink.counts();
        assert_eq!((c.index_builds, c.index_reuses), (2, 1));
        assert_eq!((c.trie_builds, c.trie_reuses), (2, 1));
        cache.set_profile(None);
    }

    #[test]
    fn partial_apply_groups_by_binding() {
        let (module, rels) = ctx_fixture();
        let cx = EvalCtx::new(&module, &rels);
        // E[x] with x unbound: groups for x=1 (2 suffixes) and x=2 (1).
        let papp = RExpr::PApp {
            pred: rel_core::name("E"),
            args: vec![Term::Var(0)],
        };
        let pairs = cx.eval_open(&papp, &Env::new(1)).unwrap();
        assert_eq!(pairs.len(), 2);
        let sizes: Vec<usize> = pairs.iter().map(|(_, r)| r.len()).collect();
        assert_eq!(sizes, vec![2, 1]);
    }
}
