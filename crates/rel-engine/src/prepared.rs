//! Prepared queries with parameter binding (client API v2).
//!
//! [`crate::Session::prepare`] compiles `library + query` **once** into a
//! [`Prepared`] handle; every [`Prepared::execute`] /
//! [`Prepared::execute_with`] call re-runs the compiled module against the
//! session's *current* database snapshot with zero recompilation — for a
//! server executing the same query shapes over changing data, compilation
//! drops out of the hot path entirely (the `repeated_query` workload in
//! `bench_report` tracks the win).
//!
//! `?name` placeholders in the query source are lowered by `rel-sema`
//! into reserved `?`-prefixed singleton base relations; [`Params`] carries
//! the execute-time bindings, which are injected into an O(1) CoW clone
//! of the database. Binding parameters never touches the compiled module,
//! so rebinding cannot trigger recompilation by construction.
//!
//! ```
//! use rel_core::database::figure1_database;
//! use rel_engine::{Params, Session};
//!
//! let s = Session::new(figure1_database());
//! let q = s
//!     .prepare("def output(x, y) : ProductPrice(x, y) and y > ?min")
//!     .unwrap();
//! for min in [10, 20, 30] {
//!     let out = q.execute_with(&s, &Params::new().set("min", min)).unwrap();
//!     let rows: Vec<(String, i64)> = out.rows().unwrap();
//!     assert!(rows.iter().all(|(_, y)| *y > min));
//! }
//! ```

use crate::session::{check_constraints, Session};
use rel_core::{name, Database, Name, RelError, RelResult, Relation, Value};
use rel_sema::ir::{param_relation, Module};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Execute-time parameter bindings for a [`Prepared`] query.
///
/// Each binding is relational: a value set under the reserved `?name`
/// relation. [`Params::set`] binds a single value (the common case);
/// [`Params::set_many`] and [`Params::set_rel`] bind whole value sets, so
/// one placeholder can range over e.g. an `IN`-list.
///
/// Reusing one `Params` across executes also reuses the underlying
/// relations (and therefore their generations), which keeps the session's
/// index cache warm across repeated executions.
#[derive(Clone, Debug, Default)]
pub struct Params {
    bound: BTreeMap<Name, Relation>,
}

impl Params {
    /// No bindings.
    pub fn new() -> Self {
        Params::default()
    }

    /// Bind `?name` to a single value (builder-style).
    pub fn set(mut self, param: &str, value: impl Into<Value>) -> Self {
        self.bound.insert(name(param), Relation::from_values([value.into()]));
        self
    }

    /// Bind `?name` to a set of values: the placeholder ranges over all
    /// of them.
    pub fn set_many<V: Into<Value>>(
        mut self,
        param: &str,
        values: impl IntoIterator<Item = V>,
    ) -> Self {
        self.bound
            .insert(name(param), Relation::from_values(values.into_iter().map(Into::into)));
        self
    }

    /// Bind `?name` to an arbitrary relation (O(1): relations are CoW).
    pub fn set_rel(mut self, param: &str, rel: Relation) -> Self {
        self.bound.insert(name(param), rel);
        self
    }

    /// Names bound so far, sorted.
    pub fn names(&self) -> impl Iterator<Item = &Name> {
        self.bound.keys()
    }

    /// The bound `(name, relation)` pairs in name order — the stable
    /// iteration a wire protocol needs to ship bindings to a server.
    pub fn iter(&self) -> impl Iterator<Item = (&Name, &Relation)> {
        self.bound.iter()
    }

    /// Number of bound parameters.
    pub fn len(&self) -> usize {
        self.bound.len()
    }

    /// Are there no bindings?
    pub fn is_empty(&self) -> bool {
        self.bound.is_empty()
    }

    fn get(&self, param: &str) -> Option<&Relation> {
        self.bound.get(param)
    }
}

/// A compiled query, reusable across executions and shareable across
/// threads (the module is behind an `Arc`; execution state lives in the
/// session). Obtained from [`Session::prepare`].
#[derive(Clone, Debug)]
pub struct Prepared {
    module: Arc<Module>,
    src: String,
}

impl Prepared {
    pub(crate) fn new(module: Arc<Module>, src: String) -> Self {
        Prepared { module, src }
    }

    /// The compiled module (shared handle).
    pub fn module(&self) -> &Arc<Module> {
        &self.module
    }

    /// The query source this handle was prepared from (not including the
    /// session's library prefix).
    pub fn src(&self) -> &str {
        &self.src
    }

    /// Bare names of the `?name` parameters the query references, sorted.
    pub fn param_names(&self) -> &[Name] {
        &self.module.params
    }

    /// Execute against the session's current database snapshot. The query
    /// must be parameterless — use [`Prepared::execute_with`] otherwise.
    /// Read-only: `insert`/`delete` rules are evaluated but not applied
    /// (stage writes through [`crate::Transaction::run_prepared`]).
    pub fn execute(&self, session: &Session) -> RelResult<Relation> {
        self.execute_with(session, &Params::new())
    }

    /// Execute with `?name` parameters bound. Every parameter the query
    /// references must be bound, and every binding must be referenced —
    /// mismatches are errors rather than silently-empty results. Returns
    /// the `output` relation (integrity constraints in scope are checked).
    pub fn execute_with(&self, session: &Session, params: &Params) -> RelResult<Relation> {
        let start = crate::metrics::enabled().then(std::time::Instant::now);
        let rels = self.materialize_with(session, params, session.db())?;
        check_constraints(&self.module, &rels)?;
        if let Some(start) = start {
            crate::metrics::registry().query_us.record(start.elapsed());
        }
        Ok(rels.get("output").cloned().unwrap_or_default())
    }

    /// [`Prepared::execute`] under a profile sink — see
    /// [`crate::Session::query_profiled`] for the contract and
    /// [`crate::profile`] for how to read the result.
    pub fn execute_profiled(
        &self,
        session: &Session,
    ) -> RelResult<(Relation, crate::profile::QueryProfile)> {
        self.execute_with_profiled(session, &Params::new())
    }

    /// [`Prepared::execute_with`] under a profile sink.
    pub fn execute_with_profiled(
        &self,
        session: &Session,
        params: &Params,
    ) -> RelResult<(Relation, crate::profile::QueryProfile)> {
        let start = std::time::Instant::now();
        // A prepared handle is by construction compiled: its module came
        // out of the session's cache (or was inserted there) at prepare
        // time. Report the cache's *current* view of the source.
        let module_cache_hit = session.module_cached(&self.src);
        let db = self.bind(params, session.db())?;
        session.run_profiled(start, module_cache_hit, |s| {
            let (rels, outcome) = s.materialize_module_outcome(&self.module, &db)?;
            check_constraints(&self.module, &rels)?;
            Ok((rels.get("output").cloned().unwrap_or_default(), outcome))
        })
    }

    /// Check that every module parameter is bound and every binding is a
    /// module parameter — mismatches are errors rather than
    /// silently-empty results.
    fn validate(&self, params: &Params) -> RelResult<()> {
        for required in &self.module.params {
            if params.get(required).is_none() {
                return Err(RelError::unsafe_expr(format!(
                    "parameter `?{required}` is unbound (prepared query \
                     expects: {})",
                    render_names(&self.module.params)
                )));
            }
        }
        for bound in params.names() {
            if !self.module.params.contains(bound) {
                return Err(RelError::unsafe_expr(format!(
                    "query has no parameter `?{bound}` (prepared query \
                     expects: {})",
                    render_names(&self.module.params)
                )));
            }
        }
        Ok(())
    }

    /// Validate `params` against the module's parameter list and build
    /// the execution database: an O(1) CoW clone of `base` with the
    /// reserved `?name` relations injected.
    pub(crate) fn bind(&self, params: &Params, base: &Database) -> RelResult<Database> {
        self.validate(params)?;
        let mut db = base.clone();
        for p in &self.module.params {
            let rel = params.get(p).expect("checked above").clone();
            db.set(param_relation(p), rel);
        }
        Ok(db)
    }

    /// Materialize the compiled module against `base` (+ bound params)
    /// through the session's shared index cache and incremental fixpoint
    /// cache: re-executions against an unchanged (or slightly changed)
    /// snapshot re-derive only the dependent cone of what moved — for a
    /// rebound parameter, just the strata reading that parameter.
    pub(crate) fn materialize_with(
        &self,
        session: &Session,
        params: &Params,
        base: &Database,
    ) -> RelResult<BTreeMap<Name, Relation>> {
        let db = self.bind(params, base)?;
        session.materialize_module(&self.module, &db)
    }

    /// Execute a whole batch of parameter bindings against **one**
    /// copy-on-write snapshot of the session's current database (a single
    /// [`Database::clone`], amortized across the batch — asserted by the
    /// `execute_many_snapshots` test against the
    /// [`rel_core::database::snapshots`] counter), returning one `output`
    /// relation per binding, in order. Constraints are checked per
    /// binding, exactly as [`Prepared::execute_with`] would; the first
    /// failure aborts the batch.
    pub fn execute_many(&self, session: &Session, batches: &[Params]) -> RelResult<Vec<Relation>> {
        if batches.is_empty() {
            return Ok(Vec::new());
        }
        // One snapshot; each binding only swaps the reserved `?name`
        // relations in place (the validation in `bind` is replicated so
        // error behavior matches the one-at-a-time path).
        let mut db = self.bind(&batches[0], session.db())?;
        let mut out = Vec::with_capacity(batches.len());
        for (i, params) in batches.iter().enumerate() {
            if i > 0 {
                self.validate(params)?;
                for p in &self.module.params {
                    let rel = params.get(p).expect("validated above").clone();
                    db.set(param_relation(p), rel);
                }
            }
            let rels = session.materialize_module(&self.module, &db)?;
            check_constraints(&self.module, &rels)?;
            out.push(rels.get("output").cloned().unwrap_or_default());
        }
        Ok(out)
    }
}

fn render_names(names: &[Name]) -> String {
    if names.is_empty() {
        return "none".to_string();
    }
    names
        .iter()
        .map(|n| format!("?{n}"))
        .collect::<Vec<_>>()
        .join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rel_core::database::figure1_database;
    use rel_core::tuple;

    fn session() -> Session {
        Session::new(figure1_database())
    }

    #[test]
    fn execute_reruns_against_current_snapshot() {
        let mut s = session();
        let q = s.prepare("def output(x) : ProductPrice(x, _)").unwrap();
        assert_eq!(q.execute(&s).unwrap().len(), 4);
        s.db_mut().insert("ProductPrice", tuple!["P9", 99]);
        // Same handle, new data — no recompilation, fresh snapshot.
        assert_eq!(q.execute(&s).unwrap().len(), 5);
    }

    #[test]
    fn parameter_binding_filters() {
        let s = session();
        let q = s
            .prepare("def output(x, y) : ProductPrice(x, y) and y > ?min")
            .unwrap();
        assert_eq!(q.param_names(), &[name("min")]);
        let out = q.execute_with(&s, &Params::new().set("min", 15)).unwrap();
        assert_eq!(
            out.rows::<(String, i64)>().unwrap(),
            vec![("P2".to_string(), 20), ("P3".to_string(), 30), ("P4".to_string(), 40)]
        );
        let out = q.execute_with(&s, &Params::new().set("min", 35)).unwrap();
        assert_eq!(out, Relation::from_tuples([tuple!["P4", 40]]));
    }

    #[test]
    fn param_in_argument_position_joins() {
        let s = session();
        let q = s.prepare("def output(y) : ProductPrice(?product, y)").unwrap();
        let out = q
            .execute_with(&s, &Params::new().set("product", "P3"))
            .unwrap();
        assert_eq!(out.single::<i64>().unwrap(), 30);
    }

    #[test]
    fn set_valued_param_ranges() {
        let s = session();
        let q = s.prepare("def output(x, y) : x = ?x and ProductPrice(x, y)").unwrap();
        let out = q
            .execute_with(&s, &Params::new().set_many("x", ["P1", "P3"]))
            .unwrap();
        assert_eq!(
            out,
            Relation::from_tuples([tuple!["P1", 10], tuple!["P3", 30]])
        );
    }

    #[test]
    fn unbound_param_is_an_error() {
        let s = session();
        let q = s.prepare("def output(x) : ProductPrice(x, ?min)").unwrap();
        let err = q.execute(&s).unwrap_err();
        assert!(err.to_string().contains("?min"), "{err}");
    }

    #[test]
    fn unknown_binding_is_an_error() {
        let s = session();
        let q = s.prepare("def output(x) : ProductPrice(x, _)").unwrap();
        let err = q
            .execute_with(&s, &Params::new().set("nope", 1))
            .unwrap_err();
        assert!(err.to_string().contains("?nope"), "{err}");
    }

    #[test]
    fn query_rejects_parameterized_source() {
        let s = session();
        let err = s
            .query("def output(x) : ProductPrice(x, ?min)")
            .unwrap_err();
        assert!(err.to_string().contains("?min"), "{err}");
    }

    #[test]
    fn params_never_leak_into_session_db() {
        let s = session();
        let q = s.prepare("def output(x) : ProductPrice(x, ?min)").unwrap();
        q.execute_with(&s, &Params::new().set("min", 10)).unwrap();
        assert!(!s.db().defines("?min"));
    }
}
