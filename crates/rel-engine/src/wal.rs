//! The write-ahead log: CRC32-framed, length-prefixed commit records.
//!
//! Every committed transaction appends one record holding its net
//! base-relation delta (inserts + deletes — derived relations are always
//! recomputed, never logged). The on-disk format is a headerless sequence
//! of records:
//!
//! ```text
//! record := [len: u32 LE] [crc: u32 LE] [body: len bytes]
//! body   := [seq: u64 LE] [delta: rel_core::codec::encode_delta]
//! ```
//!
//! `crc` is the IEEE CRC32 of `body`; `seq` numbers commits `1, 2, 3, …`
//! across the whole history of the store (snapshots record the last seq
//! they contain, so replay after compaction skips already-applied
//! records).
//!
//! ## Crash semantics
//!
//! The writer emits each record with a single `write_all` of the fully
//! assembled buffer, *after* constraint checks pass — an aborted or
//! dropped transaction never touches the log, and a crash mid-append
//! leaves at most one torn record at the tail. [`scan`] classifies
//! damage:
//!
//! * a record whose header or body runs past end-of-file, or whose CRC /
//!   decode fails **at the very tail** → a clean crash point: scanning
//!   stops, the prefix is the recovered history, and the torn bytes are
//!   reported (and truncated away when the log is reopened for append);
//! * a CRC / framing / decode failure **with valid data after it**, or a
//!   non-monotone sequence number → real corruption, a hard
//!   [`RelError::Corrupt`] with the precise byte offset.

use crate::durability::{DurabilityConfig, FailpointFile, FsyncPolicy};
use rel_core::codec::{self, Reader};
use rel_core::database::Delta;
use rel_core::{RelError, RelResult};
use std::fs::OpenOptions;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Bytes in a record header (`len` + `crc`).
pub const RECORD_HEADER: usize = 8;

/// File name of the log inside a durable store directory.
pub const WAL_FILE: &str = "wal.log";

/// Assemble the on-disk bytes of one commit record.
pub fn encode_record(seq: u64, delta: &Delta) -> Vec<u8> {
    let mut body = Vec::with_capacity(64);
    body.extend_from_slice(&seq.to_le_bytes());
    codec::encode_delta(delta, &mut body);
    let mut rec = Vec::with_capacity(RECORD_HEADER + body.len());
    rec.extend_from_slice(&(body.len() as u32).to_le_bytes());
    rec.extend_from_slice(&codec::crc32(&body).to_le_bytes());
    rec.extend_from_slice(&body);
    rec
}

/// One decoded commit record.
#[derive(Clone, Debug)]
pub struct WalRecord {
    /// Commit sequence number.
    pub seq: u64,
    /// The committed base-relation delta.
    pub delta: Delta,
    /// Byte offset of the record's header within the log.
    pub offset: u64,
}

/// What the end of the log looked like.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalTail {
    /// The log ends exactly at a record boundary.
    Clean,
    /// The final record is torn/truncated/corrupt — a crash point. The
    /// bytes from `offset` on are not part of the recovered history.
    Torn {
        /// Offset of the damaged record's header.
        offset: u64,
        /// Why it was rejected.
        reason: String,
    },
}

/// Result of scanning a log image: the valid record prefix, the byte
/// length of that prefix, and how the tail ended.
#[derive(Clone, Debug)]
pub struct WalScan {
    /// Every valid record, in log order.
    pub records: Vec<WalRecord>,
    /// Byte length of the valid prefix (append position after reopening).
    pub good_len: u64,
    /// Tail classification.
    pub tail: WalTail,
}

/// Scan a log image. `path` is used only for error reporting.
///
/// Returns `Err(RelError::Corrupt)` for *mid-log* damage (a bad record
/// with valid records after it, a sequence regression, or framing that
/// cannot come from a torn write); tail damage is reported as
/// [`WalTail::Torn`] with the prefix intact.
pub fn scan(path: &Path, bytes: &[u8]) -> RelResult<WalScan> {
    let total = bytes.len() as u64;
    let mut records = Vec::new();
    let mut pos = 0u64;
    let mut last_seq = 0u64;
    while pos < total {
        let rem = (total - pos) as usize;
        if rem < RECORD_HEADER {
            return Ok(WalScan {
                records,
                good_len: pos,
                tail: WalTail::Torn {
                    offset: pos,
                    reason: format!("truncated record header ({rem} bytes)"),
                },
            });
        }
        let at = pos as usize;
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(bytes[at + 4..at + 8].try_into().expect("4 bytes"));
        if len < 8 {
            // The writer emits the length of `seq + delta`, which is at
            // least 8 bytes, in one atomic 4-byte field of a single
            // `write_all` — a smaller value cannot be a torn artifact.
            return Err(RelError::corrupt(
                path.display().to_string(),
                pos,
                format!("record length {len} is smaller than the sequence header"),
            ));
        }
        if len > rem - RECORD_HEADER {
            return Ok(WalScan {
                records,
                good_len: pos,
                tail: WalTail::Torn {
                    offset: pos,
                    reason: format!(
                        "record body of {len} bytes extends past end of log \
                         ({} bytes remain)",
                        rem - RECORD_HEADER
                    ),
                },
            });
        }
        let body = &bytes[at + RECORD_HEADER..at + RECORD_HEADER + len];
        let end = pos + (RECORD_HEADER + len) as u64;
        let fail = |reason: String| -> RelResult<WalScan> {
            if end == total {
                // Damage confined to the final record: clean crash point.
                Ok(WalScan {
                    records: records.clone(),
                    good_len: pos,
                    tail: WalTail::Torn { offset: pos, reason },
                })
            } else {
                // Valid bytes follow the damage: the history has a hole.
                Err(RelError::corrupt(path.display().to_string(), pos, reason))
            }
        };
        if codec::crc32(body) != crc {
            return fail(format!("CRC mismatch in record at offset {pos}"));
        }
        let seq = u64::from_le_bytes(body[..8].try_into().expect("8 bytes"));
        let delta = {
            let mut r = Reader::new(&body[8..]);
            match codec::decode_delta(&mut r) {
                Ok(d) if r.is_empty() => d,
                Ok(_) => return fail(format!("record at offset {pos} has trailing bytes")),
                Err(e) => {
                    return fail(format!("record at offset {pos} fails to decode: {e}"))
                }
            }
        };
        if seq <= last_seq {
            // A CRC-valid record with a regressed sequence number means
            // the log was spliced or overwritten — never a torn write.
            return Err(RelError::corrupt(
                path.display().to_string(),
                pos,
                format!("sequence number {seq} does not advance past {last_seq}"),
            ));
        }
        last_seq = seq;
        records.push(WalRecord { seq, delta, offset: pos });
        pos = end;
    }
    Ok(WalScan { records, good_len: pos, tail: WalTail::Clean })
}

/// The append half of the log, owned by a durable session.
#[derive(Debug)]
pub struct WalWriter {
    file: FailpointFile,
    path: PathBuf,
    len: u64,
    next_seq: u64,
    unsynced_commits: u64,
    fsync: FsyncPolicy,
    fsync_batch: u64,
    /// Set when a failed append could not be rolled back: the file may
    /// hold a torn record past `len`, and appending after it would turn a
    /// clean crash point into mid-log corruption. All further appends are
    /// refused; recovery on the next open lands on the valid prefix.
    poisoned: bool,
}

impl WalWriter {
    /// Open (creating if absent) the log for appending. `good_len` is the
    /// valid prefix length reported by [`scan`] — anything beyond it (a
    /// torn tail from a previous crash) is truncated away before the
    /// first append. `next_seq` numbers the next commit.
    pub fn open(
        dir: &Path,
        good_len: u64,
        next_seq: u64,
        cfg: &DurabilityConfig,
    ) -> RelResult<Self> {
        let path = dir.join(WAL_FILE);
        let ctx = |what: &str, e: &std::io::Error| {
            RelError::io(path.display().to_string(), what.to_string(), e)
        };
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| ctx("opening WAL for append", &e))?;
        let file = FailpointFile::new(file);
        file.set_len(good_len).map_err(|e| ctx("truncating torn WAL tail", &e))?;
        Ok(WalWriter {
            file,
            path,
            len: good_len,
            next_seq,
            unsynced_commits: 0,
            fsync: cfg.fsync,
            fsync_batch: cfg.fsync_batch.max(1),
            poisoned: false,
        })
    }

    /// Current byte length of the log.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Is the log empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sequence number the next append will carry.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    fn io_err(&self, what: &str, e: &std::io::Error) -> RelError {
        RelError::io(self.path.display().to_string(), what.to_string(), e)
    }

    /// Append one commit record and apply the fsync policy. Returns the
    /// record's sequence number only once the record (and, under
    /// [`FsyncPolicy::Always`] or a full batch, its sync) succeeded — the
    /// caller acknowledges the commit on `Ok` and aborts it on `Err`.
    ///
    /// On error the writer rolls the file back to the last record
    /// boundary, so an aborted commit leaves no trace and the writer can
    /// keep appending. If even the rollback fails (the disk is truly
    /// gone), the writer poisons itself and refuses further appends: the
    /// file is exactly what a crashed process leaves behind, and the next
    /// recovery lands on the clean prefix.
    pub fn append(&mut self, delta: &Delta) -> RelResult<u64> {
        self.append_with(delta, false)
    }

    /// Append one commit record **without** applying the fsync policy —
    /// the group-commit write path. The record is framed and written
    /// exactly like [`WalWriter::append`], but the sync it would have
    /// earned is deferred until [`WalWriter::flush_group`], which covers
    /// every deferred record with a single `fdatasync`. A commit appended
    /// this way must not be acknowledged until that flush returns.
    pub fn append_deferred(&mut self, delta: &Delta) -> RelResult<u64> {
        self.append_with(delta, true)
    }

    fn append_with(&mut self, delta: &Delta, defer_sync: bool) -> RelResult<u64> {
        if self.poisoned {
            let e = std::io::Error::other(
                "WAL writer is poisoned by an earlier unrecoverable append failure",
            );
            return Err(self.io_err("appending WAL record", &e));
        }
        let seq = self.next_seq;
        let rec = encode_record(seq, delta);
        if let Err(e) = self.file.write_all(&rec) {
            return Err(self.roll_back_failed_append("appending WAL record", &e));
        }
        crate::metrics::registry().wal_bytes.add(rec.len() as u64);
        let synced = !defer_sync
            && match self.fsync {
                FsyncPolicy::Always => true,
                FsyncPolicy::Batch => self.unsynced_commits + 1 >= self.fsync_batch,
                FsyncPolicy::Off => false,
            };
        if synced {
            if let Err(e) = self.file.sync_data() {
                // The record is on disk but its durability is unknown;
                // chop it off so the acknowledged history and the log
                // agree (the commit is being aborted).
                return Err(self.roll_back_failed_append("syncing WAL", &e));
            }
        }
        self.len += rec.len() as u64;
        self.next_seq += 1;
        self.unsynced_commits = if synced { 0 } else { self.unsynced_commits + 1 };
        Ok(seq)
    }

    /// Trim a partially appended record back to the last record boundary
    /// (`self.len`); poison the writer if the file cannot be repaired.
    fn roll_back_failed_append(&mut self, what: &str, e: &std::io::Error) -> RelError {
        if self.file.set_len(self.len).is_err() {
            self.poisoned = true;
        }
        self.io_err(what, e)
    }

    /// Close a group-commit window: apply the fsync policy **once** over
    /// every record deferred since the last sync. Returns how many
    /// commits the sync covered — `0` when the policy decided no sync was
    /// due yet ([`FsyncPolicy::Off`] always; [`FsyncPolicy::Batch`] until
    /// a full batch of commits has accumulated), in which case the
    /// deferred commits simply stay in the running batch counter.
    ///
    /// On `Err` the records are on disk but their durability is unknown;
    /// unlike a failed [`WalWriter::append`] the commits were already
    /// installed by the caller, so nothing is rolled back — the caller
    /// must refuse to acknowledge the group.
    pub fn flush_group(&mut self) -> RelResult<u64> {
        let covered = self.unsynced_commits;
        let due = match self.fsync {
            FsyncPolicy::Always => covered > 0,
            FsyncPolicy::Batch => covered >= self.fsync_batch,
            FsyncPolicy::Off => false,
        };
        if !due {
            return Ok(0);
        }
        self.file
            .sync_data()
            .map_err(|e| self.io_err("syncing WAL commit group", &e))?;
        self.unsynced_commits = 0;
        Ok(covered)
    }

    /// Flush appended records to stable storage now.
    pub fn sync(&mut self) -> RelResult<()> {
        self.file
            .sync_data()
            .map_err(|e| self.io_err("syncing WAL", &e))?;
        self.unsynced_commits = 0;
        Ok(())
    }

    /// Truncate the log to empty after a successful snapshot at
    /// `next_seq - 1`. Sequence numbering continues — replay skips
    /// records at or below the snapshot's seq, so a crash *before* this
    /// truncation is harmless.
    pub fn reset(&mut self) -> RelResult<()> {
        self.file
            .set_len(0)
            .map_err(|e| self.io_err("truncating WAL after snapshot", &e))?;
        self.len = 0;
        self.unsynced_commits = 0;
        Ok(())
    }
}

/// Read the raw log image (empty if the file does not exist).
pub fn read_log(dir: &Path) -> RelResult<Vec<u8>> {
    let path = dir.join(WAL_FILE);
    match std::fs::read(&path) {
        Ok(bytes) => Ok(bytes),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
        Err(e) => Err(RelError::io(
            path.display().to_string(),
            "reading WAL",
            &e,
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rel_core::tuple;

    fn delta(n: i64) -> Delta {
        let mut d = Delta::default();
        d.insert("R", tuple![n, "x"]);
        d.delete("S", tuple![n]);
        d
    }

    fn log_of(n: u64) -> Vec<u8> {
        let mut bytes = Vec::new();
        for seq in 1..=n {
            bytes.extend_from_slice(&encode_record(seq, &delta(seq as i64)));
        }
        bytes
    }

    #[test]
    fn scan_roundtrips_records() {
        let bytes = log_of(3);
        let scan = scan(Path::new("t.log"), &bytes).unwrap();
        assert_eq!(scan.records.len(), 3);
        assert_eq!(scan.good_len, bytes.len() as u64);
        assert_eq!(scan.tail, WalTail::Clean);
        assert_eq!(scan.records[1].seq, 2);
        assert_eq!(scan.records[1].delta, delta(2));
    }

    #[test]
    fn every_truncation_point_is_a_clean_prefix() {
        let bytes = log_of(3);
        let rec_len = encode_record(1, &delta(1)).len() as u64;
        for cut in 0..bytes.len() {
            let scan = scan(Path::new("t.log"), &bytes[..cut]).unwrap();
            let complete = (cut as u64) / rec_len;
            assert_eq!(
                scan.records.len() as u64,
                complete,
                "cut at {cut}: wrong prefix"
            );
            assert_eq!(scan.good_len, complete * rec_len);
            let torn = !(cut as u64).is_multiple_of(rec_len);
            assert_eq!(matches!(scan.tail, WalTail::Torn { .. }), torn, "cut at {cut}");
        }
    }

    #[test]
    fn bit_flip_in_final_record_is_clean_crash_point() {
        let mut bytes = log_of(2);
        let rec_len = encode_record(1, &delta(1)).len();
        // Flip a payload byte of the *second* (final) record.
        let idx = rec_len + RECORD_HEADER + 9;
        bytes[idx] ^= 0x40;
        let scan = scan(Path::new("t.log"), &bytes).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.good_len, rec_len as u64);
        match scan.tail {
            WalTail::Torn { offset, ref reason } => {
                assert_eq!(offset, rec_len as u64);
                assert!(reason.contains("CRC"), "{reason}");
            }
            WalTail::Clean => panic!("tail must be torn"),
        }
    }

    #[test]
    fn bit_flip_mid_log_is_hard_corruption_with_offset() {
        let mut bytes = log_of(3);
        let rec_len = encode_record(1, &delta(1)).len();
        // Flip a payload byte of the *second* record — record 3 follows.
        let idx = rec_len + RECORD_HEADER + 9;
        bytes[idx] ^= 0x40;
        let err = scan(Path::new("t.log"), &bytes).unwrap_err();
        match err {
            RelError::Corrupt(c) => assert_eq!(c.offset, rec_len as u64),
            other => panic!("expected Corrupt, got {other}"),
        }
    }

    #[test]
    fn sequence_regression_is_hard_corruption() {
        let mut bytes = encode_record(5, &delta(5));
        bytes.extend_from_slice(&encode_record(5, &delta(6))); // repeats 5
        let err = scan(Path::new("t.log"), &bytes).unwrap_err();
        assert!(matches!(err, RelError::Corrupt(_)), "{err}");
        assert!(err.to_string().contains("sequence"), "{err}");
    }

    #[test]
    fn undersized_length_field_is_hard_corruption() {
        let mut bytes = vec![0u8; RECORD_HEADER]; // len = 0 < 8
        bytes.extend_from_slice(&[0; 16]);
        let err = scan(Path::new("t.log"), &bytes).unwrap_err();
        assert!(matches!(err, RelError::Corrupt(ref c) if c.offset == 0), "{err}");
    }

    #[test]
    fn empty_log_is_clean() {
        let scan = scan(Path::new("t.log"), &[]).unwrap();
        assert!(scan.records.is_empty());
        assert_eq!(scan.good_len, 0);
        assert_eq!(scan.tail, WalTail::Clean);
    }

    #[test]
    fn writer_appends_and_truncates_torn_tail() {
        let dir = std::env::temp_dir().join(format!(
            "rel-wal-{}-{}",
            std::process::id(),
            line!()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let cfg = DurabilityConfig { fsync: FsyncPolicy::Off, ..Default::default() };
        let mut w = WalWriter::open(&dir, 0, 1, &cfg).unwrap();
        assert_eq!(w.append(&delta(1)).unwrap(), 1);
        assert_eq!(w.append(&delta(2)).unwrap(), 2);
        drop(w);
        // Simulate a torn tail: append garbage, then reopen at good_len.
        let bytes = read_log(&dir).unwrap();
        let good = bytes.len() as u64;
        std::fs::OpenOptions::new()
            .append(true)
            .open(dir.join(WAL_FILE))
            .unwrap()
            .write_all(&[1, 2, 3])
            .unwrap();
        let scanned = scan(&dir.join(WAL_FILE), &read_log(&dir).unwrap()).unwrap();
        assert_eq!(scanned.good_len, good);
        assert!(matches!(scanned.tail, WalTail::Torn { .. }));
        let mut w = WalWriter::open(&dir, scanned.good_len, 3, &cfg).unwrap();
        assert_eq!(w.append(&delta(3)).unwrap(), 3);
        let rescan = scan(&dir.join(WAL_FILE), &read_log(&dir).unwrap()).unwrap();
        assert_eq!(rescan.records.len(), 3);
        assert_eq!(rescan.tail, WalTail::Clean);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
