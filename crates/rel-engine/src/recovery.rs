//! Recovery: rebuild the database from the latest valid snapshot plus
//! the write-ahead log tail.
//!
//! [`recover`] is a pure read of a durable store directory:
//!
//! 1. pick the highest-sequence snapshot that validates end-to-end
//!    (magic + CRC + decode), warning about any invalid candidate it
//!    skips (a crash during compaction legitimately leaves stray `.tmp`
//!    images; those are not even candidates);
//! 2. scan the WAL ([`crate::wal::scan`]): a torn / truncated / corrupt
//!    **final** record is a clean crash point — the valid prefix is the
//!    recovered history and the tail is reported as a warning — while
//!    damage **mid-log** is a hard [`rel_core::RelError::Corrupt`] with
//!    the precise byte offset;
//! 3. replay every record with `seq` above the snapshot's, enforcing
//!    sequence continuity (a gap means a snapshot/log mismatch — data
//!    would silently vanish — and is a hard error, not a warning).
//!
//! The result is **byte-identical to a prefix of the committed-transaction
//! history**: exactly the commits whose records (or snapshot image) fully
//! reached disk, in order, with nothing reordered or half-applied. The
//! `crash_recovery` integration suite drives every byte-level crash point
//! through this property.
//!
//! Recovery itself never modifies the store; the torn tail (if any) is
//! truncated by [`crate::wal::WalWriter::open`] when the session attaches
//! for appending.

use crate::snapshot;
use crate::wal::{self, WalTail};
use rel_core::{Database, RelError, RelResult};
use std::path::Path;

/// The rebuilt state of a durable store.
#[derive(Debug)]
pub struct Recovered {
    /// The database after replay: snapshot image + WAL tail.
    pub db: Database,
    /// Sequence number of the last commit represented in `db` (0 when
    /// the store is empty).
    pub seq: u64,
    /// Sequence number of the snapshot the rebuild started from (0 when
    /// recovery started from an empty database).
    pub snapshot_seq: u64,
    /// WAL records replayed on top of the snapshot.
    pub replayed: usize,
    /// Byte length of the valid WAL prefix (the append position for the
    /// next writer; bytes beyond it belong to a torn tail).
    pub wal_good_len: u64,
    /// Human-readable warnings: torn tails recovered past, invalid
    /// snapshot candidates skipped. Empty on a clean shutdown.
    pub warnings: Vec<String>,
}

impl Recovered {
    /// Sequence number the next committed transaction should carry.
    pub fn next_seq(&self) -> u64 {
        self.seq + 1
    }
}

/// Rebuild the database image of the durable store at `dir`. Read-only;
/// see the module docs for the exact torn-tail / corruption contract.
pub fn recover(dir: &Path) -> RelResult<Recovered> {
    let mut warnings = Vec::new();

    // 1. Latest valid snapshot. Invalid candidates are skipped with a
    // warning — the next-older snapshot plus the (untruncated) WAL still
    // reconstructs the same history, and the seq-continuity check below
    // catches the case where it cannot.
    let mut base = Database::new();
    let mut snapshot_seq = 0u64;
    for (cand_seq, path) in snapshot::candidates(dir)? {
        match snapshot::read(&path) {
            Ok((seq, db)) => {
                debug_assert_eq!(seq, cand_seq, "snapshot name/content seq mismatch");
                base = db;
                snapshot_seq = seq;
                break;
            }
            Err(e) => warnings.push(format!(
                "skipping invalid snapshot {}: {e}",
                path.display()
            )),
        }
    }

    // 2. Scan the log.
    let wal_path = dir.join(wal::WAL_FILE);
    let bytes = wal::read_log(dir)?;
    let scan = wal::scan(&wal_path, &bytes)?;
    if let WalTail::Torn { offset, reason } = &scan.tail {
        warnings.push(format!(
            "WAL tail at byte {offset} of {} is not a complete record ({reason}); \
             recovering the {}-record prefix as of the last completed commit",
            wal_path.display(),
            scan.records.len(),
        ));
    }

    // 3. Replay the tail above the snapshot, enforcing continuity.
    let mut seq = snapshot_seq;
    let mut replayed = 0usize;
    for rec in &scan.records {
        if rec.seq <= snapshot_seq {
            continue;
        }
        if rec.seq != seq + 1 {
            return Err(RelError::corrupt(
                wal_path.display().to_string(),
                rec.offset,
                format!(
                    "commit sequence jumps from {seq} to {} — the log does not \
                     continue the recovered snapshot (commits are missing)",
                    rec.seq
                ),
            ));
        }
        base.apply(&rec.delta);
        seq = rec.seq;
        replayed += 1;
    }

    Ok(Recovered {
        db: base,
        seq,
        snapshot_seq,
        replayed,
        wal_good_len: scan.good_len,
        warnings,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::durability::{DurabilityConfig, FsyncPolicy};
    use crate::wal::WalWriter;
    use rel_core::database::Delta;
    use rel_core::tuple;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rel-rec-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn delta(n: i64) -> Delta {
        let mut d = Delta::default();
        d.insert("R", tuple![n]);
        d
    }

    fn cfg() -> DurabilityConfig {
        DurabilityConfig { fsync: FsyncPolicy::Off, ..Default::default() }
    }

    #[test]
    fn empty_store_recovers_to_empty() {
        let dir = temp_dir("empty");
        let rec = recover(&dir).unwrap();
        assert_eq!(rec.seq, 0);
        assert_eq!(rec.db.total_tuples(), 0);
        assert!(rec.warnings.is_empty());
        // A zero-length WAL file is equally clean.
        std::fs::write(dir.join(wal::WAL_FILE), []).unwrap();
        let rec = recover(&dir).unwrap();
        assert_eq!(rec.seq, 0);
        assert!(rec.warnings.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wal_only_replay() {
        let dir = temp_dir("walonly");
        let mut w = WalWriter::open(&dir, 0, 1, &cfg()).unwrap();
        for n in 1..=4 {
            w.append(&delta(n)).unwrap();
        }
        drop(w);
        let rec = recover(&dir).unwrap();
        assert_eq!(rec.seq, 4);
        assert_eq!(rec.replayed, 4);
        assert_eq!(rec.db.get("R").unwrap().len(), 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_plus_tail_skips_replayed_records() {
        let dir = temp_dir("snaptail");
        let mut w = WalWriter::open(&dir, 0, 1, &cfg()).unwrap();
        let mut db = Database::new();
        for n in 1..=3 {
            w.append(&delta(n)).unwrap();
            db.apply(&delta(n));
        }
        // Compaction published a snapshot at seq 3 but crashed before
        // truncating the log; records 1–3 must be skipped, 4 replayed.
        snapshot::write(&dir, 3, &db).unwrap();
        w.append(&delta(4)).unwrap();
        drop(w);
        let rec = recover(&dir).unwrap();
        assert_eq!(rec.snapshot_seq, 3);
        assert_eq!(rec.seq, 4);
        assert_eq!(rec.replayed, 1);
        assert_eq!(rec.db.get("R").unwrap().len(), 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn invalid_latest_snapshot_falls_back_with_warning() {
        let dir = temp_dir("fallback");
        let mut db = Database::new();
        db.apply(&delta(1));
        snapshot::write(&dir, 1, &db).unwrap();
        let mut w = WalWriter::open(&dir, 0, 2, &cfg()).unwrap();
        w.append(&delta(2)).unwrap();
        drop(w);
        // A later snapshot that never finished: bit-rotted image.
        db.apply(&delta(2));
        let bad = snapshot::write(&dir, 2, &db).unwrap();
        let mut bytes = std::fs::read(&bad).unwrap();
        let last = bytes.len() - 10;
        bytes[last] ^= 0xFF;
        std::fs::write(&bad, bytes).unwrap();
        let rec = recover(&dir).unwrap();
        assert_eq!(rec.snapshot_seq, 1, "must fall back to the older snapshot");
        assert_eq!(rec.seq, 2, "the WAL still supplies commit 2");
        assert_eq!(rec.db.get("R").unwrap().len(), 2);
        assert!(rec.warnings.iter().any(|w| w.contains("invalid snapshot")), "{:?}", rec.warnings);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sequence_gap_is_hard_error() {
        let dir = temp_dir("gap");
        // Snapshot at 1, but the log starts at 3: commit 2 is gone.
        let mut db = Database::new();
        db.apply(&delta(1));
        snapshot::write(&dir, 1, &db).unwrap();
        let mut w = WalWriter::open(&dir, 0, 3, &cfg()).unwrap();
        w.append(&delta(3)).unwrap();
        drop(w);
        let err = recover(&dir).unwrap_err();
        assert!(matches!(err, RelError::Corrupt(_)), "{err}");
        assert!(err.to_string().contains("jumps"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_recovers_prefix_with_warning() {
        let dir = temp_dir("torn");
        let mut w = WalWriter::open(&dir, 0, 1, &cfg()).unwrap();
        w.append(&delta(1)).unwrap();
        w.append(&delta(2)).unwrap();
        drop(w);
        let wal_path = dir.join(wal::WAL_FILE);
        let bytes = std::fs::read(&wal_path).unwrap();
        std::fs::write(&wal_path, &bytes[..bytes.len() - 3]).unwrap();
        let rec = recover(&dir).unwrap();
        assert_eq!(rec.seq, 1);
        assert_eq!(rec.db.get("R").unwrap().len(), 1);
        assert_eq!(rec.warnings.len(), 1);
        assert!(rec.warnings[0].contains("WAL tail"), "{}", rec.warnings[0]);
        assert!(rec.wal_good_len < bytes.len() as u64);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
