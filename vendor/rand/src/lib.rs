//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no network access, so the workspace vendors
//! a minimal deterministic PRNG under the same crate name. Only the API
//! surface used by this workspace is provided: `StdRng::seed_from_u64`,
//! `Rng::{gen_range, gen_bool}`, and `distributions::{Distribution,
//! WeightedIndex}`. All workspace call sites seed explicitly, so the
//! generator is deterministic by construction; it makes no attempt to be
//! statistically equivalent to the real `rand`.

pub mod rngs {
    /// xoshiro256** seeded via SplitMix64 — the standard small-state
    /// generator construction.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into 256 bits.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let r = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            r
        }
    }
}

/// Raw 64-bit output.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seeding (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        rngs::StdRng::from_u64(seed)
    }
}

/// Range types usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_range!(i32, i64, u32, u64, usize);

/// Convenience sampling methods.
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        // 53-bit uniform fraction in [0, 1).
        let f = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        f < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod distributions {
    use crate::RngCore;
    use std::borrow::Borrow;

    /// A sampleable distribution.
    pub trait Distribution<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Error from [`WeightedIndex::new`].
    #[derive(Clone, Debug, PartialEq)]
    pub struct WeightedError(pub &'static str);

    /// Discrete distribution over indices `0..n` with given weights
    /// (cumulative-sum + linear scan; n is small in every workload).
    #[derive(Clone, Debug)]
    pub struct WeightedIndex {
        cumulative: Vec<f64>,
    }

    impl WeightedIndex {
        pub fn new<I>(weights: I) -> Result<Self, WeightedError>
        where
            I: IntoIterator,
            I::Item: Borrow<f64>,
        {
            let mut cumulative = Vec::new();
            let mut total = 0.0f64;
            for w in weights {
                let w = *w.borrow();
                if w < 0.0 || !w.is_finite() {
                    return Err(WeightedError("invalid weight"));
                }
                total += w;
                cumulative.push(total);
            }
            if cumulative.is_empty() || total <= 0.0 {
                return Err(WeightedError("no positive weights"));
            }
            Ok(WeightedIndex { cumulative })
        }
    }

    impl Distribution<usize> for WeightedIndex {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
            let total = *self.cumulative.last().expect("nonempty");
            let f = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            let target = f * total;
            self.cumulative
                .iter()
                .position(|&c| target < c)
                .unwrap_or(self.cumulative.len() - 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, WeightedIndex};
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let w = rng.gen_range(1..=4);
            assert!((1..=4).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn weighted_index_skews() {
        let mut rng = StdRng::seed_from_u64(3);
        let dist = WeightedIndex::new([8.0, 1.0, 1.0]).unwrap();
        let mut counts = [0usize; 3];
        for _ in 0..1000 {
            counts[dist.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[1] + counts[2]);
    }
}
