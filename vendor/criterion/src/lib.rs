//! Offline stand-in for the `criterion` crate (0.5 API subset).
//!
//! The build environment has no network access; this vendored crate
//! provides `Criterion`, `BenchmarkGroup`, `Bencher`, and the
//! `criterion_group!` / `criterion_main!` macros so the workspace's
//! benches compile and produce simple wall-clock measurements (median of
//! `sample_size` runs after one warm-up) on stdout. No statistics,
//! plotting, or CLI filtering.

use std::time::{Duration, Instant};

/// Top-level bench driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup { _c: self, name, sample_size: 10 }
    }

    pub fn bench_function(&mut self, id: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        run_bench(&id.into(), 10, f);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function(&mut self, id: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let id = format!("{}/{}", self.name, id.into());
        run_bench(&id, self.sample_size, f);
    }

    pub fn finish(self) {}
}

fn run_bench(id: &str, samples: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher { elapsed: Duration::ZERO, iters: 0 };
    f(&mut b); // warm-up
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher { elapsed: Duration::ZERO, iters: 0 };
        f(&mut b);
        if b.iters > 0 {
            times.push(b.elapsed / b.iters as u32);
        }
    }
    times.sort();
    let median = times.get(times.len() / 2).copied().unwrap_or_default();
    println!("bench {id}: median {median:?} over {samples} samples");
}

/// Per-sample measurement handle.
pub struct Bencher {
    elapsed: Duration,
    iters: usize,
}

impl Bencher {
    /// Time one closure invocation (the closure's return value is dropped
    /// after timing, like criterion's `iter`).
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        let start = Instant::now();
        let out = f();
        self.elapsed += start.elapsed();
        self.iters += 1;
        drop(out);
    }
}

/// Opaque black box — best-effort inlining barrier.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
