//! Offline stand-in for the `proptest` crate (1.x API subset).
//!
//! The build environment has no network access; this vendored crate
//! implements the strategy combinators the workspace's property tests
//! use: ranges and `&str` character-class patterns as strategies, tuple
//! strategies, `Just`, `prop_map`, `prop_recursive`, `prop_oneof!`,
//! `proptest::collection::vec`, and the `proptest!` macro with
//! `ProptestConfig::with_cases`. Inputs are generated from a fixed seed
//! (deterministic runs); there is **no shrinking** — failures report the
//! generated input via the panic message instead.

use rand::rngs::StdRng;
use rand::Rng;
use std::rc::Rc;

/// Test-runner configuration (`cases` only).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

pub mod test_runner {
    /// Deterministic RNG used by the `proptest!` macro expansion.
    pub struct TestRng(pub rand::rngs::StdRng);

    impl TestRng {
        pub fn deterministic() -> Self {
            use rand::SeedableRng;
            TestRng(rand::rngs::StdRng::seed_from_u64(0x9E3779B97F4A7C15))
        }
    }
}

/// A generator of random values (no shrinking).
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Recursive strategies: `f` maps a strategy for depth-`d` values to
    /// one for depth-`d+1` values; generation picks a depth ≤ `depth`
    /// uniformly, so both leaves and deep values occur.
    fn prop_recursive<S2, F>(self, depth: u32, _desired_size: u32, _expected_branch: u32, f: F) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let mut layers: Vec<BoxedStrategy<Self::Value>> = vec![self.boxed()];
        for _ in 0..depth {
            let prev = Union { arms: layers.clone() }.boxed();
            layers.push(f(prev).boxed());
        }
        Union { arms: layers }.boxed()
    }
}

/// Object-safe view of a strategy, for boxing.
trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut StdRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut StdRng) -> S::Value {
        self.generate(rng)
    }
}

/// A reference-counted type-erased strategy (cloneable, as `prop_recursive`
/// closures clone their inner strategy freely).
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among strategies (the `prop_oneof!` expansion).
pub struct Union<T> {
    pub arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(i32, i64, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);

/// `&str` strategies: a tiny character-class pattern language covering
/// the workspace's usage — concatenations of `[class]` atoms (with `a-z`
/// ranges) and literal characters, each optionally repeated `{m,n}`.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut StdRng) -> String {
        generate_pattern(self, rng)
    }
}

fn generate_pattern(pat: &str, rng: &mut StdRng) -> String {
    let chars: Vec<char> = pat.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // One atom: a character class or a literal character.
        let class: Vec<char> = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed [ in pattern {pat:?}"));
            let mut cs = Vec::new();
            let mut j = i + 1;
            while j < close {
                if j + 2 < close && chars[j + 1] == '-' {
                    for c in chars[j]..=chars[j + 2] {
                        cs.push(c);
                    }
                    j += 3;
                } else {
                    cs.push(chars[j]);
                    j += 1;
                }
            }
            i = close + 1;
            cs
        } else {
            let c = chars[i];
            i += 1;
            vec![c]
        };
        // Optional {m,n} repetition.
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed {{ in pattern {pat:?}"));
            let spec: String = chars[i + 1..close].iter().collect();
            let (lo, hi) = match spec.split_once(',') {
                Some((a, b)) => (a.parse().unwrap(), b.parse().unwrap()),
                None => {
                    let n: usize = spec.parse().unwrap();
                    (n, n)
                }
            };
            i = close + 1;
            (lo, hi)
        } else {
            (1, 1)
        };
        let n = rng.gen_range(lo..=hi);
        for _ in 0..n {
            out.push(class[rng.gen_range(0..class.len())]);
        }
    }
    out
}

pub mod collection {
    use super::{BoxedStrategy, Strategy};
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy for `Vec<T>` with a length drawn from `len`.
    pub struct VecStrategy<S: Strategy> {
        element: S,
        lo: usize,
        hi: usize, // exclusive
    }

    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, lo: len.start, hi: len.end }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.lo..self.hi);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    impl<S: Strategy + 'static> VecStrategy<S>
    where
        S::Value: 'static,
    {
        pub fn boxed(self) -> BoxedStrategy<Vec<S::Value>> {
            Strategy::boxed(self)
        }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::test_runner::TestRng;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_oneof, proptest, BoxedStrategy, Just, ProptestConfig,
        Strategy,
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @expand ($cfg) $($rest)* }
    };
    // Note: the attribute list captures `#[test]` itself and re-emits it
    // on the generated zero-argument function.
    (@expand ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($argpat:pat in $argstrat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = {
                    let $crate::test_runner::TestRng(inner) =
                        $crate::test_runner::TestRng::deterministic();
                    inner
                };
                for _case in 0..config.cases {
                    $(let $argpat = $crate::Strategy::generate(&($argstrat), &mut rng);)+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @expand ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vec() {
        let mut rng = {
            let TestRng(inner) = TestRng::deterministic();
            inner
        };
        let s = collection::vec(0i64..6, 0..12);
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!(v.len() < 12);
            assert!(v.iter().all(|x| (0..6).contains(x)));
        }
    }

    #[test]
    fn pattern_strategy() {
        let mut rng = {
            let TestRng(inner) = TestRng::deterministic();
            inner
        };
        for _ in 0..50 {
            let s = "[a-z][a-z0-9]{0,3}".generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 4, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_expands(x in 0i64..10, mut v in collection::vec(0i64..5, 1..4)) {
            prop_assert!((0..10).contains(&x));
            v.reverse();
            prop_assert_eq!(v.is_empty(), false);
        }
    }

    proptest! {
        #[test]
        fn recursive_and_oneof(n in prop_oneof![Just(1i64), 5i64..8]) {
            prop_assert!(n == 1 || (5..8).contains(&n));
        }
    }
}
